/// \file fault_injection_test.cpp
/// \brief Forces failures at every degradation-ladder rung through the
/// fault registry and asserts the router degrades instead of crashing:
/// rung 1 (serial re-route of faulted/poisoned commits), rung 2 (rip-up
/// recovery), rung 3 (drop the net, keep the layout consistent). Also
/// covers flow::run's outcome classification and exit-code contract.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "bench_data/synthetic.hpp"
#include "engine/engine.hpp"
#include "flow/check.hpp"
#include "flow/flow.hpp"
#include "flow/run.hpp"
#include "partition/partition.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace ocr {
namespace {

using geom::Point;
using geom::Rect;

std::vector<levelb::BNet> random_nets(util::Rng& rng, geom::Coord size,
                                      int count) {
  std::vector<levelb::BNet> nets;
  for (int n = 0; n < count; ++n) {
    levelb::BNet net{n, {}};
    const int degree = static_cast<int>(rng.uniform_int(2, 4));
    for (int t = 0; t < degree; ++t) {
      net.terminals.push_back(
          Point{rng.uniform_int(0, size - 1), rng.uniform_int(0, size - 1)});
    }
    nets.push_back(std::move(net));
  }
  return nets;
}

levelb::LevelBResult route_instance(int threads, int nets = 60) {
  util::Rng rng(5);
  auto grid = tig::TrackGrid::uniform(Rect(0, 0, 1000, 1000), 9, 11);
  auto bnets = random_nets(rng, 1000, nets);
  engine::EngineOptions options;
  options.threads = threads;
  engine::RoutingEngine router(grid, options);
  return router.route(bnets);
}

/// Engine-level tests share the process-global registry; always disarm.
class FaultLadder : public ::testing::Test {
 protected:
  void TearDown() override { util::FaultRegistry::global().clear(); }

  levelb::LevelBResult route_with_stats(int threads,
                                        engine::EngineStats* stats,
                                        int ripup_rounds = 1) {
    util::Rng rng(5);
    auto grid = tig::TrackGrid::uniform(Rect(0, 0, 1000, 1000), 9, 11);
    auto bnets = random_nets(rng, 1000, 60);
    engine::EngineOptions options;
    options.threads = threads;
    options.levelb.ripup_rounds = ripup_rounds;
    engine::RoutingEngine router(grid, options);
    levelb::LevelBResult result = router.route(bnets);
    *stats = router.stats();
    return result;
  }
};

/// Rung 1: a commit-validation fault re-routes the net serially on the
/// live grid, so the final wiring is bit-identical to the fault-free
/// serial run.
TEST_F(FaultLadder, CommitterFaultRungOneIsBitIdentical) {
  util::FaultRegistry::global().clear();
  const levelb::LevelBResult expected = route_instance(1);

  ASSERT_TRUE(util::FaultRegistry::global()
                  .configure("engine.committer.commit=~0.25;seed=3")
                  .ok());
  engine::EngineStats stats;
  const levelb::LevelBResult faulted = route_with_stats(4, &stats);
  EXPECT_GT(stats.fault_reroutes, 0);
  EXPECT_EQ(stats.fault_drops, 0);
  EXPECT_EQ(faulted, expected);
}

/// Rung 1 via a dying worker: a poisoned speculation (worker fault) is
/// recovered by the committer's serial recompute — still bit-identical.
TEST_F(FaultLadder, WorkerFaultIsRecoveredSerially) {
  util::FaultRegistry::global().clear();
  const levelb::LevelBResult expected = route_instance(1);

  ASSERT_TRUE(util::FaultRegistry::global()
                  .configure("engine.worker.route=@3|11|27")
                  .ok());
  engine::EngineStats stats;
  const levelb::LevelBResult faulted = route_with_stats(4, &stats);
  EXPECT_GT(stats.worker_failures, 0);
  EXPECT_EQ(faulted, expected);
}

/// A degraded scheduler claim poisons the speculation before any search
/// happens; the committer recovers it exactly like a dead worker.
TEST_F(FaultLadder, SchedulerFaultIsRecoveredSerially) {
  util::FaultRegistry::global().clear();
  const levelb::LevelBResult expected = route_instance(1);

  ASSERT_TRUE(util::FaultRegistry::global()
                  .configure("engine.scheduler.claim=~0.2;seed=5")
                  .ok());
  engine::EngineStats stats;
  const levelb::LevelBResult faulted = route_with_stats(4, &stats);
  EXPECT_GT(stats.worker_failures, 0);
  EXPECT_EQ(faulted, expected);
}

/// A worker task that throws at the pool boundary must not deadlock the
/// committer (abandonment detection) or change the result.
TEST_F(FaultLadder, DyingPoolTaskDoesNotDeadlockOrDiverge) {
  util::FaultRegistry::global().clear();
  const levelb::LevelBResult expected = route_instance(1);

  ASSERT_TRUE(
      util::FaultRegistry::global().configure("util.pool.task=1").ok());
  engine::EngineStats stats;
  const levelb::LevelBResult faulted = route_with_stats(4, &stats);
  EXPECT_EQ(stats.pool_task_failures, 1);
  EXPECT_EQ(faulted, expected);
}

/// Rung 3: an apply fault drops the net — marked kFaultInjected, its
/// wiring cleared (no half-committed geometry), everything else routed.
TEST_F(FaultLadder, ApplyFaultDropsTheNetCleanly) {
  ASSERT_TRUE(util::FaultRegistry::global()
                  .configure("engine.committer.apply=3")
                  .ok());
  engine::EngineStats stats;
  // Rip-up disabled so the drop stays observable (a rip-up round would
  // likely re-route the dropped net into the space it freed).
  const levelb::LevelBResult faulted =
      route_with_stats(4, &stats, /*ripup_rounds=*/0);
  EXPECT_EQ(stats.fault_drops, 1);

  int dropped = 0;
  for (const levelb::NetResult& net : faulted.nets) {
    if (net.outcome == util::StatusKind::kFaultInjected) {
      ++dropped;
      EXPECT_FALSE(net.complete);
      EXPECT_TRUE(net.paths.empty());
      EXPECT_GT(net.failed_connections, 0);
    }
  }
  EXPECT_EQ(dropped, 1);
}

/// The serial router hits levelb.connect faults identically to the
/// parallel engine (the site is keyed by net id), so a faulted run is
/// still thread-count invariant.
TEST_F(FaultLadder, ConnectFaultIsThreadCountInvariant) {
  const auto faulted_route = [this](int threads) {
    EXPECT_TRUE(util::FaultRegistry::global()
                    .configure("levelb.connect=@7|19;seed=1")
                    .ok());
    engine::EngineStats stats;
    return route_with_stats(threads, &stats);
  };
  const levelb::LevelBResult serial = faulted_route(1);
  const levelb::LevelBResult parallel = faulted_route(4);
  EXPECT_EQ(serial, parallel);
}

/// Flow-level: forcing drops through the whole over-cell flow must leave
/// a layout that passes flow::check (dropped nets excluded), with the
/// expected unrouted set, classified "partial" under the degrade policy.
class FlowFaults : public ::testing::Test {
 protected:
  void TearDown() override { util::FaultRegistry::global().clear(); }

  static flow::RunReport run_ami33(const char* faults,
                                   flow::FailPolicy policy,
                                   flow::FlowArtifacts* artifacts,
                                   int threads = 4) {
    const auto ml =
        bench_data::generate_macro_layout(bench_data::ami33_spec());
    const auto zero = ml.assemble(
        std::vector<geom::Coord>(ml.num_channels(), 0));
    const auto partition = partition::partition_by_class(zero);
    flow::RunOptions options;
    options.flow.levelb_threads = threads;
    options.fail_policy = policy;
    options.faults = faults;
    options.artifacts = artifacts;
    return flow::run(ml, partition, options);
  }
};

TEST_F(FlowFaults, CleanRunIsCleanWithExitCodeZero) {
  flow::FlowArtifacts artifacts;
  const flow::RunReport report =
      run_ami33("-", flow::FailPolicy::kDegrade, &artifacts);
  EXPECT_EQ(report.status, flow::RunStatus::kClean);
  EXPECT_EQ(report.exit_code(), 0);
  EXPECT_TRUE(report.error.ok());
  EXPECT_EQ(report.metrics.unrouted_nets, 0);
  EXPECT_TRUE(flow::check_over_cell_result(artifacts).empty());
}

TEST_F(FlowFaults, DroppedNetsDegradeToPartialWithCleanLayout) {
  flow::FlowArtifacts artifacts;
  const flow::RunReport report = run_ami33(
      "engine.committer.apply=~0.05;seed=2", flow::FailPolicy::kDegrade,
      &artifacts);
  const flow::FlowMetrics& m = report.metrics;
  ASSERT_GT(m.degrade_fault_drops, 0);
  EXPECT_EQ(report.status, flow::RunStatus::kPartial);
  EXPECT_EQ(report.exit_code(), 3);
  EXPECT_GE(m.unrouted_nets,
            static_cast<int>(m.degrade_fault_drops) - m.degrade_ripup_recovered);
  EXPECT_EQ(m.faults_injected, m.degrade_fault_drops);

  // The surviving layout stays consistent: every routed net connected,
  // no overlaps — the dropped nets' wiring is gone, not half-applied.
  EXPECT_TRUE(flow::check_over_cell_result(artifacts).empty());

  // The unrouted set is exactly the nets marked by the ladder.
  std::set<int> expected_unrouted;
  for (const levelb::NetResult& net : artifacts.levelb.nets) {
    if (!net.complete) expected_unrouted.insert(net.id);
  }
  EXPECT_EQ(static_cast<int>(expected_unrouted.size()), m.unrouted_nets);
}

TEST_F(FlowFaults, AbortPolicyTurnsDegradationIntoFailure) {
  flow::FlowArtifacts artifacts;
  const flow::RunReport report = run_ami33(
      "engine.committer.apply=~0.05;seed=2", flow::FailPolicy::kAbort,
      &artifacts);
  ASSERT_GT(report.metrics.degrade_fault_drops, 0);
  EXPECT_EQ(report.status, flow::RunStatus::kFailed);
  EXPECT_EQ(report.exit_code(), 1);
  EXPECT_FALSE(report.error.ok());
}

TEST_F(FlowFaults, PartialPolicySkipsRipupButStaysConsistent) {
  flow::FlowArtifacts artifacts;
  const flow::RunReport report =
      run_ami33("levelb.connect=@5", flow::FailPolicy::kPartial, &artifacts);
  const flow::FlowMetrics& m = report.metrics;
  EXPECT_EQ(report.status, flow::RunStatus::kPartial);
  EXPECT_EQ(report.exit_code(), 3);
  EXPECT_EQ(m.degrade_ripup_recovered, 0);
  EXPECT_GE(m.unrouted_nets, 1);
  EXPECT_TRUE(flow::check_over_cell_result(artifacts).empty());
}

/// Rung 1 faults never surface to the flow outcome: re-routed commits
/// keep the run clean and bit-identical to the serial fault-free flow.
TEST_F(FlowFaults, RungOneFaultsKeepTheFlowClean) {
  flow::FlowArtifacts clean_artifacts;
  const flow::RunReport clean =
      run_ami33("-", flow::FailPolicy::kDegrade, &clean_artifacts, 1);
  ASSERT_EQ(clean.status, flow::RunStatus::kClean);

  flow::FlowArtifacts artifacts;
  const flow::RunReport report = run_ami33(
      "engine.committer.commit=~0.2;seed=4", flow::FailPolicy::kDegrade,
      &artifacts);
  ASSERT_GT(report.metrics.degrade_fault_reroutes, 0);
  EXPECT_EQ(report.status, flow::RunStatus::kClean);
  EXPECT_EQ(report.exit_code(), 0);
  EXPECT_EQ(artifacts.levelb, clean_artifacts.levelb);
}

TEST_F(FlowFaults, BadFaultSpecFailsTheRunUpFront) {
  flow::FlowArtifacts artifacts;
  const flow::RunReport report =
      run_ami33("not a spec", flow::FailPolicy::kDegrade, &artifacts);
  EXPECT_EQ(report.status, flow::RunStatus::kFailed);
  EXPECT_EQ(report.exit_code(), 1);
  EXPECT_EQ(report.error.kind(), util::StatusKind::kInvalidArgument);
}

}  // namespace
}  // namespace ocr

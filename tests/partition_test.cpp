#include <gtest/gtest.h>

#include "partition/partition.hpp"

namespace ocr::partition {
namespace {

using netlist::Layout;
using netlist::NetClass;
using netlist::NetId;

Layout make_layout() {
  Layout layout("p");
  layout.set_die(geom::Rect(0, 0, 1000, 1000));
  const auto a = layout.add_cell("A", geom::Rect(0, 0, 100, 100));
  const auto b = layout.add_cell("B", geom::Rect(800, 800, 1000, 1000));
  const auto add = [&](const char* name, NetClass cls, geom::Coord far_x) {
    const NetId id = layout.add_net(name, cls);
    layout.add_pin(id, a, geom::Point{100, 50}, netlist::PinSide::kEast);
    layout.add_pin(id, b, geom::Point{far_x, 800},
                   netlist::PinSide::kSouth);
    return id;
  };
  add("sig_short", NetClass::kSignal, 810);
  add("sig_long", NetClass::kSignal, 990);
  add("crit", NetClass::kCritical, 820);
  add("clk", NetClass::kClock, 830);
  add("pwr", NetClass::kPower, 840);
  return layout;
}

TEST(Partition, ByClassSendsSpecialNetsToA) {
  const Layout layout = make_layout();
  const NetPartition p = partition_by_class(layout);
  EXPECT_EQ(p.set_a.size(), 3u);  // crit, clk, pwr
  EXPECT_EQ(p.set_b.size(), 2u);
  EXPECT_TRUE(partition_is_exact(layout, p));
}

TEST(Partition, ByLengthThreshold) {
  const Layout layout = make_layout();
  // All nets span >= ~1460 dbu; use a threshold separating the two signal
  // nets (hpwl differs by their far-x).
  const geom::Coord hpwl_short = layout.net_hpwl(NetId{0});
  const NetPartition p = partition_by_length(layout, hpwl_short);
  EXPECT_TRUE(partition_is_exact(layout, p));
  // The shortest net must be in A; the longest in B.
  EXPECT_TRUE(std::find(p.set_a.begin(), p.set_a.end(), NetId{0}) !=
              p.set_a.end());
  EXPECT_TRUE(std::find(p.set_b.begin(), p.set_b.end(), NetId{1}) !=
              p.set_b.end());
}

TEST(Partition, AllBEliminatesChannels) {
  const Layout layout = make_layout();
  const NetPartition p = partition_all_b(layout);
  EXPECT_TRUE(p.set_a.empty());
  EXPECT_EQ(p.set_b.size(), layout.nets().size());
  EXPECT_TRUE(partition_is_exact(layout, p));
}

TEST(Partition, AllA) {
  const Layout layout = make_layout();
  const NetPartition p = partition_all_a(layout);
  EXPECT_TRUE(p.set_b.empty());
  EXPECT_TRUE(partition_is_exact(layout, p));
}

TEST(Partition, ExactnessDetectsDuplicates) {
  const Layout layout = make_layout();
  NetPartition p = partition_by_class(layout);
  p.set_b.push_back(p.set_a.front());  // net in both sets
  EXPECT_FALSE(partition_is_exact(layout, p));
}

TEST(Partition, ExactnessDetectsMissing) {
  const Layout layout = make_layout();
  NetPartition p = partition_by_class(layout);
  p.set_b.pop_back();
  EXPECT_FALSE(partition_is_exact(layout, p));
}

}  // namespace
}  // namespace ocr::partition

#include <gtest/gtest.h>

#include <map>

#include "levelb/router.hpp"
#include "util/rng.hpp"

namespace ocr::levelb {
namespace {

using geom::Interval;
using geom::Point;
using geom::Rect;

/// An instance engineered so the first-pass order fails: a narrow corridor
/// that one net's wire blocks for another.
///
///   - The grid has a single free corridor column between two wall
///     obstacles.
///   - Net "long" (routed first, longest-first) runs along the corridor.
///   - Net "short" then needs the corridor too.
tig::TrackGrid corridor_grid() {
  auto grid = tig::TrackGrid::uniform(Rect(0, 0, 400, 400), 10, 10);
  // Two walls with a narrow corridor at x in [190, 210].
  for (const Rect& wall : {Rect(0, 100, 185, 300), Rect(215, 100, 400, 300)}) {
    grid.block_region_h(wall);
    grid.block_region_v(wall);
  }
  return grid;
}

TEST(Ripup, DisabledKeepsFailure) {
  // Saturate the corridor: it has 2-3 usable vertical tracks; route three
  // nets through it, then a fourth must fail without rip-up... rather than
  // engineering exact saturation, use a direct comparison: whatever the
  // no-ripup pass fails, the ripup pass must fail at most as much.
  util::Rng rng(321);
  std::vector<BNet> nets;
  for (int n = 0; n < 8; ++n) {
    nets.push_back(BNet{
        n, {Point{rng.uniform_int(0, 180), rng.uniform_int(0, 90)},
            Point{rng.uniform_int(0, 390), rng.uniform_int(310, 390)}}});
  }
  LevelBOptions no_ripup;
  no_ripup.ripup_rounds = 0;
  auto grid_a = corridor_grid();
  LevelBRouter router_a(grid_a, no_ripup);
  const auto result_a = router_a.route(nets);

  LevelBOptions with_ripup;
  with_ripup.ripup_rounds = 3;
  auto grid_b = corridor_grid();
  LevelBRouter router_b(grid_b, with_ripup);
  const auto result_b = router_b.route(nets);

  EXPECT_LE(result_b.failed_nets, result_a.failed_nets);
}

TEST(Ripup, ImprovesCongestedInstances) {
  // Stress many seeds; rip-up must never hurt and should help somewhere.
  util::Rng seed_rng(99);
  int helped = 0;
  int hurt = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const std::uint64_t seed = seed_rng.next_u64();
    util::Rng rng(seed);
    std::vector<BNet> nets;
    for (int n = 0; n < 30; ++n) {
      BNet net{n, {}};
      const int degree = static_cast<int>(rng.uniform_int(2, 4));
      for (int t = 0; t < degree; ++t) {
        net.terminals.push_back(
            Point{rng.uniform_int(0, 299), rng.uniform_int(0, 299)});
      }
      nets.push_back(std::move(net));
    }
    const auto run = [&nets](int rounds) {
      auto grid = tig::TrackGrid::uniform(Rect(0, 0, 300, 300), 10, 12);
      LevelBOptions options;
      options.ripup_rounds = rounds;
      LevelBRouter router(grid, options);
      return router.route(nets).failed_nets;
    };
    const int without = run(0);
    const int with = run(3);
    if (with < without) ++helped;
    if (with > without) ++hurt;
  }
  EXPECT_EQ(hurt, 0);
  EXPECT_GT(helped, 0);
}

TEST(Ripup, InvariantsHoldAfterRipup) {
  // After rip-up rounds, cross-net overlap must still be impossible.
  util::Rng rng(777);
  auto grid = tig::TrackGrid::uniform(Rect(0, 0, 300, 300), 10, 12);
  std::vector<BNet> nets;
  for (int n = 0; n < 25; ++n) {
    nets.push_back(BNet{
        n, {Point{rng.uniform_int(0, 299), rng.uniform_int(0, 299)},
            Point{rng.uniform_int(0, 299), rng.uniform_int(0, 299)}}});
  }
  LevelBOptions options;
  options.ripup_rounds = 3;
  LevelBRouter router(grid, options);
  const auto result = router.route(nets);

  struct TrackLeg {
    int net;
    Interval span;
  };
  std::map<std::pair<int, int>, std::vector<TrackLeg>> by_track;
  for (const auto& net : result.nets) {
    for (const auto& path : net.paths) {
      for (std::size_t leg = 0; leg + 1 < path.points.size(); ++leg) {
        const auto& p = path.points[leg];
        const auto& q = path.points[leg + 1];
        const auto& t = path.tracks[leg];
        const bool horizontal = t.orient == geom::Orientation::kHorizontal;
        by_track[{horizontal ? 0 : 1, t.index}].push_back(TrackLeg{
            net.id,
            horizontal
                ? Interval(std::min(p.x, q.x), std::max(p.x, q.x))
                : Interval(std::min(p.y, q.y), std::max(p.y, q.y))});
      }
    }
  }
  for (const auto& [track, legs] : by_track) {
    for (std::size_t i = 0; i < legs.size(); ++i) {
      for (std::size_t j = i + 1; j < legs.size(); ++j) {
        if (legs[i].net == legs[j].net) continue;
        ASSERT_FALSE(legs[i].span.overlaps(legs[j].span))
            << "nets " << legs[i].net << " and " << legs[j].net
            << " overlap after rip-up";
      }
    }
  }
}

TEST(Ripup, DeterministicAcrossRuns) {
  util::Rng rng(555);
  std::vector<BNet> nets;
  for (int n = 0; n < 20; ++n) {
    nets.push_back(BNet{
        n, {Point{rng.uniform_int(0, 299), rng.uniform_int(0, 299)},
            Point{rng.uniform_int(0, 299), rng.uniform_int(0, 299)}}});
  }
  const auto run = [&nets]() {
    auto grid = tig::TrackGrid::uniform(Rect(0, 0, 300, 300), 10, 12);
    LevelBOptions options;
    options.ripup_rounds = 2;
    LevelBRouter router(grid, options);
    return router.route(nets);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.total_wire_length, b.total_wire_length);
  EXPECT_EQ(a.failed_nets, b.failed_nets);
  EXPECT_EQ(a.total_corners, b.total_corners);
}

}  // namespace
}  // namespace ocr::levelb

#include <gtest/gtest.h>

#include "tig/graph.hpp"
#include "tig/track_grid.hpp"

namespace ocr::tig {
namespace {

using geom::Interval;
using geom::Point;
using geom::Rect;

TrackGrid small_grid() {
  return TrackGrid({10, 20, 30}, {5, 15, 25, 35}, Rect(0, 0, 40, 40));
}

TEST(TrackGrid, ConstructionAndAccess) {
  const TrackGrid g = small_grid();
  EXPECT_EQ(g.num_h(), 3);
  EXPECT_EQ(g.num_v(), 4);
  EXPECT_EQ(g.h_y(1), 20);
  EXPECT_EQ(g.v_x(3), 35);
  EXPECT_EQ(g.crossing(1, 2), (Point{25, 20}));
}

TEST(TrackGrid, UniformConstruction) {
  const TrackGrid g = TrackGrid::uniform(Rect(0, 0, 100, 60), 10, 10);
  EXPECT_EQ(g.num_h(), 6);   // y = 5, 15, ..., 55
  EXPECT_EQ(g.num_v(), 10);  // x = 5, 15, ..., 95
  EXPECT_EQ(g.h_y(0), 5);
  EXPECT_EQ(g.v_x(9), 95);
}

TEST(TrackGrid, NonUniformSpacingSupported) {
  // The paper allows "different spacing" between tracks.
  const TrackGrid g({5, 7, 30}, {1, 100}, Rect(0, 0, 120, 40));
  EXPECT_EQ(g.nearest_h(6), 0);   // tie goes to the lower track
  EXPECT_EQ(g.nearest_h(17), 1);  // |17-7| = 10 < |30-17| = 13
  EXPECT_EQ(g.nearest_h(20), 2);  // |20-30| = 10 < |20-7| = 13
  EXPECT_EQ(g.nearest_v(49), 0);
  EXPECT_EQ(g.nearest_v(52), 1);
}

TEST(TrackGrid, NearestClamping) {
  const TrackGrid g = small_grid();
  EXPECT_EQ(g.nearest_h(-100), 0);
  EXPECT_EQ(g.nearest_h(999), 2);
  EXPECT_EQ(g.snap(Point{0, 0}), (Point{5, 10}));
  EXPECT_EQ(g.snap(Point{36, 26}), (Point{35, 30}));
}

TEST(TrackGrid, BlockAndQuery) {
  TrackGrid g = small_grid();
  EXPECT_TRUE(g.h_is_free(0, Interval(0, 40)));
  g.block_h(0, Interval(10, 20));
  EXPECT_FALSE(g.h_is_free(0, Interval(0, 40)));
  EXPECT_TRUE(g.h_is_free(0, Interval(21, 40)));
  EXPECT_FALSE(g.crossing_free(0, 1));  // v1 at x=15 inside [10,20]
  EXPECT_TRUE(g.crossing_free(0, 0));   // x=5 free
  g.unblock_h(0, Interval(10, 20));
  EXPECT_TRUE(g.h_is_free(0, Interval(0, 40)));
}

TEST(TrackGrid, FreeSegments) {
  TrackGrid g = small_grid();
  g.block_h(1, Interval(14, 16));
  const auto left = g.h_free_segment(1, 5);
  ASSERT_TRUE(left.has_value());
  EXPECT_EQ(*left, Interval(0, 13));
  const auto right = g.h_free_segment(1, 25);
  ASSERT_TRUE(right.has_value());
  EXPECT_EQ(*right, Interval(17, 40));
  EXPECT_FALSE(g.h_free_segment(1, 15).has_value());
}

TEST(TrackGrid, RegionBlocking) {
  TrackGrid g = small_grid();
  g.block_region_h(Rect(10, 15, 30, 25));  // covers h track at y=20 only
  EXPECT_FALSE(g.h_is_free(1, Interval(10, 30)));
  EXPECT_TRUE(g.h_is_free(0, Interval(0, 40)));
  EXPECT_TRUE(g.h_is_free(2, Interval(0, 40)));

  g.block_region_v(Rect(10, 15, 30, 25));  // covers v tracks at x=15, 25
  EXPECT_FALSE(g.v_is_free(1, Interval(15, 25)));
  EXPECT_FALSE(g.v_is_free(2, Interval(15, 25)));
  EXPECT_TRUE(g.v_is_free(0, Interval(0, 40)));
  EXPECT_TRUE(g.v_is_free(3, Interval(0, 40)));
}

TEST(TrackGrid, DistanceToBlocked) {
  TrackGrid g = small_grid();
  EXPECT_FALSE(g.h_distance_to_blocked(0, 20).has_value());
  g.block_h(0, Interval(30, 35));
  const auto d = g.h_distance_to_blocked(0, 20);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 10);
  EXPECT_EQ(*g.h_distance_to_blocked(0, 32), 0);
}

TEST(TrackGrid, BlockedFraction) {
  TrackGrid g = small_grid();
  EXPECT_DOUBLE_EQ(g.h_blocked_fraction(0, Interval(0, 40)), 0.0);
  g.block_h(0, Interval(0, 20));
  EXPECT_DOUBLE_EQ(g.h_blocked_fraction(0, Interval(0, 40)), 0.5);
  EXPECT_DOUBLE_EQ(g.h_blocked_fraction(0, Interval(0, 20)), 1.0);
}

TEST(Graph, CompleteWithoutObstacles) {
  const TrackGrid g = small_grid();
  const TrackIntersectionGraph tig = build_tig(g);
  EXPECT_EQ(tig.num_h, 3);
  EXPECT_EQ(tig.num_v, 4);
  EXPECT_EQ(tig.num_edges(), 12u);
  EXPECT_TRUE(tig.complete());
}

TEST(Graph, ObstacleRemovesEdges) {
  TrackGrid g = small_grid();
  g.block_h(1, Interval(14, 26));  // kills crossings (h2,v2) and (h2,v3)
  const TrackIntersectionGraph tig = build_tig(g);
  EXPECT_EQ(tig.num_edges(), 10u);
  EXPECT_FALSE(tig.complete());
  EXPECT_EQ(tig.adjacency_h[1], (std::vector<int>{0, 3}));
}

TEST(Graph, BipartiteConsistency) {
  TrackGrid g = small_grid();
  g.block_v(2, Interval(0, 40));  // v3 fully blocked
  const TrackIntersectionGraph tig = build_tig(g);
  EXPECT_TRUE(tig.adjacency_v[2].empty());
  for (const auto& adj : tig.adjacency_h) {
    for (int j : adj) EXPECT_NE(j, 2);
  }
  // Edge count symmetric across the two sides.
  std::size_t from_v = 0;
  for (const auto& adj : tig.adjacency_v) from_v += adj.size();
  EXPECT_EQ(from_v, tig.num_edges());
}

TEST(Graph, ToStringLabelsTracks) {
  const TrackGrid g = small_grid();
  const auto str = build_tig(g).to_string();
  EXPECT_NE(str.find("h1: v1 v2 v3 v4"), std::string::npos);
}

}  // namespace
}  // namespace ocr::tig

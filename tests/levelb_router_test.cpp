#include <gtest/gtest.h>

#include <map>

#include "levelb/router.hpp"
#include "util/rng.hpp"

namespace ocr::levelb {
namespace {

using geom::Interval;
using geom::Point;
using geom::Rect;

tig::TrackGrid make_grid(geom::Coord size = 200) {
  return tig::TrackGrid::uniform(Rect(0, 0, size, size), 10, 10);
}

TEST(LevelBRouter, RoutesTwoTerminalNet) {
  auto grid = make_grid();
  LevelBRouter router(grid);
  const auto result =
      router.route({BNet{1, {Point{5, 5}, Point{155, 105}}}});
  ASSERT_EQ(result.nets.size(), 1u);
  EXPECT_TRUE(result.nets[0].complete);
  EXPECT_EQ(result.routed_nets, 1);
  EXPECT_EQ(result.nets[0].wire_length, 250);
  EXPECT_EQ(result.nets[0].corners, 1);
}

TEST(LevelBRouter, CommitsWiresToGrid) {
  auto grid = make_grid();
  LevelBRouter router(grid);
  router.route({BNet{1, {Point{5, 45}, Point{195, 45}}}});
  // The straight wire on y=45 must now block that track.
  const int i = grid.nearest_h(45);
  EXPECT_FALSE(grid.h_is_free(i, Interval(5, 195)));
}

TEST(LevelBRouter, SecondNetAvoidsFirst) {
  auto grid = make_grid();
  LevelBRouter router(grid);
  // Net 1 routes straight across y=45; net 2 wants to cross it vertically
  // on x=95 — legal (different layers), but net 2's horizontal pieces must
  // avoid y=45 where occupied.
  const auto result = router.route({
      BNet{1, {Point{5, 45}, Point{195, 45}}},
      BNet{2, {Point{95, 5}, Point{95, 195}}},
  });
  EXPECT_EQ(result.routed_nets, 2);
  EXPECT_EQ(result.failed_nets, 0);
}

TEST(LevelBRouter, MultiTerminalNetConnectsAll) {
  auto grid = make_grid();
  LevelBRouter router(grid);
  const BNet net{
      7, {Point{5, 5}, Point{195, 5}, Point{5, 195}, Point{195, 195},
          Point{95, 95}}};
  const auto result = router.route({net});
  ASSERT_EQ(result.nets.size(), 1u);
  EXPECT_TRUE(result.nets[0].complete);
  // 5 terminals -> 4 connections.
  EXPECT_EQ(result.nets[0].paths.size(), 4u);
  EXPECT_GT(result.nets[0].wire_length, 0);
}

TEST(LevelBRouter, SteinerReuseBeatsStarTopology) {
  auto grid = make_grid(400);
  LevelBRouter router(grid);
  // Terminals on one line: chaining should cost ~ the line length, far
  // less than a star from the first terminal.
  const BNet net{
      3, {Point{5, 205}, Point{105, 205}, Point{205, 205}, Point{305, 205},
          Point{395, 205}}};
  const auto result = router.route({net});
  ASSERT_TRUE(result.nets[0].complete);
  EXPECT_LE(result.nets[0].wire_length, 390 + 40);  // near the chain bound
}

TEST(LevelBRouter, SingleTerminalNetTriviallyComplete) {
  auto grid = make_grid();
  LevelBRouter router(grid);
  const auto result = router.route({BNet{1, {Point{5, 5}}}});
  EXPECT_TRUE(result.nets[0].complete);
  EXPECT_EQ(result.nets[0].wire_length, 0);
}

TEST(LevelBRouter, CoincidentTerminalsDeduplicated) {
  auto grid = make_grid();
  LevelBRouter router(grid);
  const auto result =
      router.route({BNet{1, {Point{5, 5}, Point{6, 6}, Point{5, 5}}}});
  // All three snap to (5,5): nothing to route.
  EXPECT_TRUE(result.nets[0].complete);
  EXPECT_EQ(result.nets[0].wire_length, 0);
}

TEST(LevelBRouter, ObstacleForcesDetourOrFailure) {
  auto grid = make_grid();
  // Wall the middle on both layers except a gap at the top.
  const Rect wall(90, 0, 110, 160);
  grid.block_region_h(wall);
  grid.block_region_v(wall);
  LevelBRouter router(grid);
  const auto result =
      router.route({BNet{1, {Point{5, 45}, Point{195, 45}}}});
  ASSERT_TRUE(result.nets[0].complete);
  // Must detour above y=160.
  geom::Coord max_y = 0;
  for (const auto& path : result.nets[0].paths) {
    for (const auto& p : path.points) max_y = std::max(max_y, p.y);
  }
  EXPECT_GT(max_y, 160);
}

TEST(LevelBRouter, FullyWalledNetFails) {
  auto grid = make_grid();
  const Rect wall(90, 0, 110, 200);
  grid.block_region_h(wall);
  grid.block_region_v(wall);
  LevelBRouter router(grid);
  const auto result =
      router.route({BNet{1, {Point{5, 45}, Point{195, 45}}}});
  EXPECT_FALSE(result.nets[0].complete);
  EXPECT_EQ(result.failed_nets, 1);
  EXPECT_GT(result.nets[0].failed_connections, 0);
}

TEST(LevelBRouter, LongestFirstOrderingUsed) {
  auto grid = make_grid(400);
  LevelBOptions opts;
  opts.ordering = NetOrdering::kLongestFirst;
  LevelBRouter router(grid, opts);
  const auto result = router.route({
      BNet{1, {Point{5, 5}, Point{25, 5}}},        // short
      BNet{2, {Point{5, 105}, Point{395, 305}}},   // long
  });
  ASSERT_EQ(result.nets.size(), 2u);
  // Longest routed first -> appears first in results.
  EXPECT_EQ(result.nets[0].id, 2);
  EXPECT_EQ(result.nets[1].id, 1);
}

TEST(LevelBRouter, AsGivenOrderingPreserved) {
  auto grid = make_grid(400);
  LevelBOptions opts;
  opts.ordering = NetOrdering::kAsGiven;
  LevelBRouter router(grid, opts);
  const auto result = router.route({
      BNet{1, {Point{5, 5}, Point{25, 5}}},
      BNet{2, {Point{5, 105}, Point{395, 305}}},
  });
  EXPECT_EQ(result.nets[0].id, 1);
  EXPECT_EQ(result.nets[1].id, 2);
}

TEST(LevelBRouterProperty, ManyRandomNetsMostlyComplete) {
  util::Rng rng(909);
  auto grid = make_grid(600);
  LevelBRouter router(grid);
  std::vector<BNet> nets;
  for (int n = 0; n < 40; ++n) {
    BNet net{n, {}};
    const int degree = static_cast<int>(rng.uniform_int(2, 5));
    for (int t = 0; t < degree; ++t) {
      net.terminals.push_back(Point{rng.uniform_int(0, 599),
                                    rng.uniform_int(0, 599)});
    }
    nets.push_back(std::move(net));
  }
  const auto result = router.route(nets);
  EXPECT_GE(result.completion_rate(), 0.95);
  EXPECT_GT(result.total_wire_length, 0);
}

TEST(LevelBRouterProperty, CommittedNetsNeverOverlapOnTracks) {
  // Different nets must never share any point of any track (crossing on
  // perpendicular tracks is fine — different layers).
  util::Rng rng(911);
  auto grid = make_grid(400);
  LevelBRouter router(grid);
  std::vector<BNet> nets;
  for (int n = 0; n < 25; ++n) {
    BNet net{n, {Point{rng.uniform_int(0, 399), rng.uniform_int(0, 399)},
                 Point{rng.uniform_int(0, 399), rng.uniform_int(0, 399)}}};
    nets.push_back(std::move(net));
  }
  const auto result = router.route(nets);
  EXPECT_GT(result.routed_nets, 15);

  struct TrackLeg {
    int net;
    Interval span;
  };
  std::map<std::pair<int, int>, std::vector<TrackLeg>> by_track;
  for (const auto& net_result : result.nets) {
    for (const auto& path : net_result.paths) {
      for (std::size_t leg = 0; leg + 1 < path.points.size(); ++leg) {
        const Point& p = path.points[leg];
        const Point& q = path.points[leg + 1];
        const auto& t = path.tracks[leg];
        const bool horizontal = t.orient == geom::Orientation::kHorizontal;
        const Interval span =
            horizontal
                ? Interval(std::min(p.x, q.x), std::max(p.x, q.x))
                : Interval(std::min(p.y, q.y), std::max(p.y, q.y));
        by_track[{horizontal ? 0 : 1, t.index}].push_back(
            TrackLeg{net_result.id, span});
      }
    }
  }
  for (const auto& [track, legs] : by_track) {
    for (std::size_t i = 0; i < legs.size(); ++i) {
      for (std::size_t j = i + 1; j < legs.size(); ++j) {
        if (legs[i].net == legs[j].net) continue;
        EXPECT_FALSE(legs[i].span.overlaps(legs[j].span))
            << "nets " << legs[i].net << " and " << legs[j].net
            << " overlap on track (" << track.first << "," << track.second
            << ")";
      }
    }
  }
}

}  // namespace
}  // namespace ocr::levelb

/// \file edge_cases_test.cpp
/// \brief Failure paths and boundary conditions across modules.

#include <gtest/gtest.h>

#include "channel/greedy.hpp"
#include "flow/flow.hpp"
#include "global/global_router.hpp"
#include "levelb/router.hpp"
#include "mlchannel/multilayer.hpp"
#include "partition/partition.hpp"

namespace ocr {
namespace {

using floorplan::MacroCell;
using floorplan::MacroLayout;
using floorplan::MacroNet;
using floorplan::MacroPin;
using geom::Point;
using geom::Rect;

// ---- global router failure paths --------------------------------------

TEST(GlobalEdge, FeedthroughSaturationReported) {
  // One row with a single tiny gap: only ~1 feedthrough slot, but two
  // nets need to cross.
  MacroLayout ml("sat", 400);
  ml.add_row(80);
  // Cells cover everything except an 8-dbu sliver (pitch is 6 -> 1 slot).
  ml.add_cell(MacroCell{"a", 196, 80, 0, 0});
  ml.add_cell(MacroCell{"b", 196, 80, 0, 204});
  for (int n = 0; n < 2; ++n) {
    const int net = ml.add_net(MacroNet{"n" + std::to_string(n),
                                        netlist::NetClass::kSignal});
    ml.add_pin(MacroPin{net, 0, false, 20 + 12 * n});  // channel 0
    ml.add_pin(MacroPin{net, 0, true, 20 + 12 * n});   // channel 1
  }
  const auto result = global::global_route(ml, {0, 1});
  EXPECT_FALSE(result.success);
  ASSERT_FALSE(result.problems.empty());
  EXPECT_NE(result.problems[0].find("feedthrough"), std::string::npos);
}

TEST(GlobalEdge, EmptyNetSetSucceeds) {
  MacroLayout ml("empty", 400);
  ml.add_row(80);
  ml.add_cell(MacroCell{"a", 100, 80, 0, 50});
  const auto result = global::global_route(ml, {});
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(result.feedthroughs.empty());
  for (const auto& channel : result.channels) {
    EXPECT_EQ(channel.max_net(), 0);
  }
}

TEST(GlobalEdge, SinglePinNetSkipped) {
  MacroLayout ml("one", 400);
  ml.add_row(80);
  ml.add_cell(MacroCell{"a", 100, 80, 0, 50});
  const int net = ml.add_net(MacroNet{"n", netlist::NetClass::kSignal});
  ml.add_pin(MacroPin{net, 0, true, 20});
  const auto result = global::global_route(ml, {net});
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.channels[1].max_net(), 0);  // nothing landed
}

// ---- level-B edge cases -------------------------------------------------

TEST(LevelBEdge, EmptyNetList) {
  auto grid = tig::TrackGrid::uniform(Rect(0, 0, 100, 100), 10, 10);
  levelb::LevelBRouter router(grid);
  const auto result = router.route({});
  EXPECT_EQ(result.routed_nets, 0);
  EXPECT_EQ(result.failed_nets, 0);
  EXPECT_DOUBLE_EQ(result.completion_rate(), 1.0);
}

TEST(LevelBEdge, TerminalOutsideDieClamps) {
  auto grid = tig::TrackGrid::uniform(Rect(0, 0, 100, 100), 10, 10);
  levelb::LevelBRouter router(grid);
  // Terminals outside the extent snap to boundary tracks.
  const auto result = router.route(
      {levelb::BNet{1, {Point{-50, -50}, Point{500, 500}}}});
  EXPECT_EQ(result.failed_nets, 0);
  EXPECT_GT(result.nets[0].wire_length, 0);
}

TEST(LevelBEdge, MinimalGridOneCrossing) {
  // A 1x1 grid: every net is trivially coincident.
  tig::TrackGrid grid({50}, {50}, Rect(0, 0, 100, 100));
  levelb::LevelBRouter router(grid);
  const auto result =
      router.route({levelb::BNet{1, {Point{10, 10}, Point{90, 90}}}});
  EXPECT_TRUE(result.nets[0].complete);  // both snap to (50,50)
  EXPECT_EQ(result.nets[0].wire_length, 0);
}

// ---- multilayer channel edge cases -------------------------------------

TEST(MlChannelEdge, SinglePairEqualsGreedy) {
  channel::ChannelProblem p;
  p.top = {1, 0, 2, 0};
  p.bot = {0, 1, 0, 2};
  mlchannel::MultiLayerOptions options;
  options.layer_pairs = 1;
  const auto multi = mlchannel::route_multilayer(p, options);
  const auto greedy = channel::route_greedy(p);
  ASSERT_TRUE(multi.success);
  ASSERT_TRUE(greedy.success);
  EXPECT_EQ(multi.max_group_tracks, greedy.num_tracks);
  EXPECT_EQ(multi.wire_length(), greedy.wire_length());
}

TEST(MlChannelEdge, ChannelHeightZeroWhenEmpty) {
  channel::ChannelProblem p;
  p.top = {0, 0};
  p.bot = {0, 0};
  const auto result = mlchannel::route_multilayer(p);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.channel_height(geom::DesignRules{}), 0);
}

// ---- flow edge cases ----------------------------------------------------

TEST(FlowEdge, InstanceWithoutCriticalNets) {
  // partition_by_class yields an empty set A; the over-cell flow must
  // handle zero level-A nets (all channels empty).
  MacroLayout ml("nocrit", 2000);
  ml.add_row(300);
  ml.add_row(300);
  ml.add_cell(MacroCell{"a", 600, 300, 0, 100});
  ml.add_cell(MacroCell{"b", 600, 300, 0, 900});
  ml.add_cell(MacroCell{"c", 600, 300, 1, 100});
  ml.add_cell(MacroCell{"d", 600, 300, 1, 900});
  for (int n = 0; n < 6; ++n) {
    const int net = ml.add_net(MacroNet{"n" + std::to_string(n),
                                        netlist::NetClass::kSignal});
    ml.add_pin(MacroPin{net, n % 4, true, 60 + 30 * n});
    ml.add_pin(MacroPin{net, (n + 1) % 4, false, 90 + 30 * n});
  }
  const auto layout = ml.assemble(
      std::vector<geom::Coord>(static_cast<std::size_t>(ml.num_channels()),
                               0));
  const auto partition = partition::partition_by_class(layout);
  EXPECT_TRUE(partition.set_a.empty());
  const auto metrics = flow::run_over_cell_flow(ml, partition);
  EXPECT_TRUE(metrics.success)
      << (metrics.problems.empty() ? "" : metrics.problems[0]);
  EXPECT_EQ(metrics.total_channel_tracks, 0);
}

TEST(FlowEdge, FourLayerArtifactsExposed) {
  MacroLayout ml("fourl", 2000);
  ml.add_row(300);
  ml.add_cell(MacroCell{"a", 600, 300, 0, 100});
  ml.add_cell(MacroCell{"b", 600, 300, 0, 900});
  const int net = ml.add_net(MacroNet{"n", netlist::NetClass::kSignal});
  ml.add_pin(MacroPin{net, 0, true, 60});
  ml.add_pin(MacroPin{net, 1, true, 90});
  flow::FlowArtifacts artifacts;
  const auto metrics =
      flow::run_four_layer_channel_flow(ml, flow::FlowOptions{},
                                        &artifacts);
  EXPECT_TRUE(metrics.success);
  EXPECT_TRUE(artifacts.layout.validate().empty());
  EXPECT_EQ(static_cast<int>(artifacts.channel_heights.size()),
            ml.num_channels());
}

// ---- greedy channel router extension columns ---------------------------

TEST(GreedyEdge, ExtensionColumnsReported) {
  // A net pair that cannot collapse before the channel end: the greedy
  // router extends past the last pin column.
  channel::ChannelProblem p;
  p.top = {1, 2};
  p.bot = {2, 1};
  const auto route = channel::route_greedy(p);
  ASSERT_TRUE(route.success);
  EXPECT_GE(route.num_columns_used, p.num_columns());
  EXPECT_TRUE(channel::validate_route(p, route).empty());
}

}  // namespace
}  // namespace ocr

/// \file shard_partition_test.cpp
/// \brief Invariants of the shard planner (engine/partition.hpp): batches
/// are an order-convex cover of the positions, member regions are
/// pairwise disjoint, and a sensitive net is always the last member of
/// its batch.

#include <gtest/gtest.h>

#include <algorithm>

#include "engine/partition.hpp"
#include "util/rng.hpp"

namespace ocr::engine {
namespace {

using geom::Point;
using levelb::BNet;

struct Instance {
  std::vector<BNet> nets;
  std::vector<std::vector<Point>> terminals;
  std::vector<const BNet*> nets_by_position;
  std::vector<const std::vector<Point>*> terminals_by_position;
};

/// Random instance in ordering order (the planner never reorders). A
/// locality bound clusters terminals; every \p sensitive_every-th net is
/// sensitive; degree-0 nets (empty terminal lists, as a failed snap
/// produces) appear occasionally.
Instance random_instance(std::uint64_t seed, geom::Coord size, int count,
                         geom::Coord locality, int sensitive_every) {
  util::Rng rng(seed);
  Instance inst;
  for (int n = 0; n < count; ++n) {
    BNet net{n, {}};
    std::vector<Point> terms;
    if (n % 13 != 7) {
      const Point center{rng.uniform_int(0, size - 1),
                         rng.uniform_int(0, size - 1)};
      const int degree = static_cast<int>(rng.uniform_int(2, 4));
      for (int t = 0; t < degree; ++t) {
        const geom::Coord x = std::clamp<geom::Coord>(
            center.x + rng.uniform_int(0, 2 * locality) - locality, 0,
            size - 1);
        const geom::Coord y = std::clamp<geom::Coord>(
            center.y + rng.uniform_int(0, 2 * locality) - locality, 0,
            size - 1);
        terms.push_back(Point{x, y});
      }
    }
    net.sensitive = sensitive_every > 0 && n % sensitive_every == 2;
    inst.nets.push_back(std::move(net));
    inst.terminals.push_back(std::move(terms));
  }
  for (int n = 0; n < count; ++n) {
    inst.nets_by_position.push_back(&inst.nets[n]);
    inst.terminals_by_position.push_back(&inst.terminals[n]);
  }
  return inst;
}

void check_invariants(const Instance& inst, const ShardPlan& plan) {
  const std::size_t n = inst.nets.size();
  // Order-convex cover: consecutive half-open runs, jointly [0, n).
  ASSERT_FALSE(plan.batches.empty() && n > 0);
  std::size_t next = 0;
  for (const ShardBatch& batch : plan.batches) {
    EXPECT_EQ(batch.begin, next);
    EXPECT_GT(batch.end, batch.begin);
    next = batch.end;
  }
  EXPECT_EQ(next, n);
  EXPECT_EQ(plan.positions(), n);
  // Pairwise-disjoint declared regions within every batch.
  for (const ShardBatch& batch : plan.batches) {
    for (std::size_t a = batch.begin; a < batch.end; ++a) {
      for (std::size_t b = a + 1; b < batch.end; ++b) {
        if (plan.has_region[a] && plan.has_region[b]) {
          EXPECT_FALSE(plan.regions[a].overlaps(plan.regions[b]))
              << "batch [" << batch.begin << "," << batch.end
              << ") members " << a << " and " << b << " overlap";
        }
      }
    }
    // A sensitive member closes its batch: registry updates are invisible
    // to footprints, so nothing may search concurrently after one.
    for (std::size_t a = batch.begin; a + 1 < batch.end; ++a) {
      EXPECT_FALSE(inst.nets_by_position[a]->sensitive)
          << "sensitive net at position " << a
          << " is not last in its batch";
    }
  }
  // Summary accessors agree with the raw batches.
  std::size_t widest = 0;
  for (const ShardBatch& b : plan.batches) {
    widest = std::max(widest, b.size());
  }
  EXPECT_EQ(plan.max_batch(), widest);
  if (!plan.batches.empty()) {
    EXPECT_NEAR(plan.mean_batch(),
                static_cast<double>(n) /
                    static_cast<double>(plan.batches.size()),
                1e-9);
  }
}

TEST(ShardPartition, FuzzInvariants) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const geom::Coord size = 500 + 100 * static_cast<geom::Coord>(seed % 7);
    const geom::Coord locality = 20 + 15 * static_cast<geom::Coord>(seed % 5);
    const int count = 10 + static_cast<int>(seed % 4) * 20;
    const int sensitive_every = (seed % 3 == 0) ? 5 : 0;
    const Instance inst =
        random_instance(seed, size, count, locality, sensitive_every);
    for (int halo_pitches : {1, 4, 16}) {
      ShardPlanOptions options;
      options.pitch = 11;
      options.halo_pitches = halo_pitches;
      const ShardPlan plan = build_shard_plan(
          inst.nets_by_position, inst.terminals_by_position, options);
      check_invariants(inst, plan);
    }
  }
}

TEST(ShardPartition, LocalNetsFormWideBatches) {
  // Far-apart local nets are exactly the workload sharding exists for:
  // the plan must expose real parallelism (mean batch clearly above 1).
  const Instance inst = random_instance(3, 4000, 200, 40, 0);
  ShardPlanOptions options;
  options.pitch = 11;
  const ShardPlan plan = build_shard_plan(inst.nets_by_position,
                                          inst.terminals_by_position,
                                          options);
  check_invariants(inst, plan);
  EXPECT_GT(plan.mean_batch(), 1.5);
  EXPECT_GT(plan.max_batch(), 2u);
  EXPECT_LT(plan.batches.size(), inst.nets.size());
}

TEST(ShardPartition, OverlappingNetsDegradeToSerialBatches) {
  // Every net spanning the whole die: no two can share a batch, so the
  // plan degenerates to one singleton per position (auto mode's signal to
  // stay speculative).
  Instance inst = random_instance(5, 300, 12, 300, 0);
  for (auto& terms : inst.terminals) {
    if (terms.empty()) continue;
    terms.front() = Point{0, 0};
    terms.back() = Point{299, 299};
  }
  const ShardPlan plan = build_shard_plan(inst.nets_by_position,
                                          inst.terminals_by_position,
                                          ShardPlanOptions{11, 4});
  check_invariants(inst, plan);
  for (const ShardBatch& batch : plan.batches) {
    std::size_t with_region = 0;
    for (std::size_t k = batch.begin; k < batch.end; ++k) {
      with_region += plan.has_region[k] ? 1 : 0;
    }
    EXPECT_LE(with_region, 1u);
  }
  EXPECT_LT(plan.mean_batch(), 2.0);
}

TEST(ShardPartition, EmptyTerminalNetsAlwaysJoin) {
  // Degree-0 positions route nothing and read nothing: they must never
  // split a batch.
  Instance inst = random_instance(9, 2000, 50, 30, 0);
  for (auto& terms : inst.terminals) terms.clear();
  const ShardPlan plan = build_shard_plan(inst.nets_by_position,
                                          inst.terminals_by_position,
                                          ShardPlanOptions{11, 16});
  check_invariants(inst, plan);
  EXPECT_EQ(plan.batches.size(), 1u);
}

TEST(ShardPartition, SensitiveClosesBatchEvenWhenDisjoint) {
  Instance inst = random_instance(11, 4000, 60, 30, 3);
  const ShardPlan plan = build_shard_plan(inst.nets_by_position,
                                          inst.terminals_by_position,
                                          ShardPlanOptions{11, 4});
  check_invariants(inst, plan);
  // With a sensitive net every third position, no batch can exceed
  // three members regardless of geometry.
  EXPECT_LE(plan.max_batch(), 3u);
}

/// The greedy loop with a plain linear member scan — the pre-spatial-hash
/// planner, kept as a reference: build_shard_plan must produce the exact
/// same batch boundaries.
ShardPlan reference_plan(const Instance& inst,
                         const ShardPlanOptions& options) {
  const std::size_t n = inst.nets_by_position.size();
  const geom::Coord halo =
      options.pitch *
      static_cast<geom::Coord>(std::max(1, options.halo_pitches));
  ShardPlan plan;
  plan.regions.resize(n);
  plan.has_region.assign(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    if (!inst.terminals_by_position[k]->empty()) {
      plan.regions[k] =
          geom::bounding_box(*inst.terminals_by_position[k]).inflated(halo);
      plan.has_region[k] = 1;
    }
  }
  ShardBatch current{0, 0};
  for (std::size_t k = 0; k < n; ++k) {
    bool joins = true;
    if (plan.has_region[k]) {
      for (std::size_t j = current.begin; j < current.end; ++j) {
        if (plan.has_region[j] &&
            plan.regions[k].overlaps(plan.regions[j])) {
          joins = false;
          break;
        }
      }
    }
    if (!joins) {
      plan.batches.push_back(current);
      current = ShardBatch{k, k};
    }
    current.end = k + 1;
    if (inst.nets_by_position[k]->sensitive) {
      plan.batches.push_back(current);
      current = ShardBatch{k + 1, k + 1};
    }
  }
  if (current.size() > 0) plan.batches.push_back(current);
  return plan;
}

void expect_same_plan(const ShardPlan& got, const ShardPlan& want) {
  ASSERT_EQ(got.batches.size(), want.batches.size());
  for (std::size_t b = 0; b < got.batches.size(); ++b) {
    EXPECT_EQ(got.batches[b].begin, want.batches[b].begin) << "batch " << b;
    EXPECT_EQ(got.batches[b].end, want.batches[b].end) << "batch " << b;
  }
  ASSERT_EQ(got.has_region.size(), want.has_region.size());
  for (std::size_t k = 0; k < got.has_region.size(); ++k) {
    ASSERT_EQ(got.has_region[k], want.has_region[k]);
    if (got.has_region[k]) {
      EXPECT_EQ(got.regions[k].xlo, want.regions[k].xlo);
      EXPECT_EQ(got.regions[k].xhi, want.regions[k].xhi);
      EXPECT_EQ(got.regions[k].ylo, want.regions[k].ylo);
      EXPECT_EQ(got.regions[k].yhi, want.regions[k].yhi);
    }
  }
}

TEST(ShardPartition, SpatialHashMatchesLinearScanReference) {
  // The spatial hash must be boolean-identical to the per-member scan,
  // batch for batch — across localities, halos, sensitive cadences, and
  // instances mixing tiny regions with die-spanning ones (the big-member
  // fallback path).
  for (std::uint64_t seed = 50; seed <= 62; ++seed) {
    const geom::Coord size = 2000 + 500 * static_cast<geom::Coord>(seed % 5);
    Instance inst = random_instance(
        seed, size, 400, 20 + 10 * static_cast<geom::Coord>(seed % 4),
        (seed % 3 == 0) ? 17 : 0);
    if (seed % 2 == 0) {
      // Sprinkle die-spanning nets: their inflated regions exceed the
      // hash's per-axis cell budget and land on the linear big-list.
      for (std::size_t k = 3; k < inst.terminals.size(); k += 37) {
        if (inst.terminals[k].empty()) continue;
        inst.terminals[k].front() = Point{0, 0};
        inst.terminals[k].back() = Point{size - 1, size - 1};
      }
    }
    for (int halo_pitches : {1, 16, 64}) {
      ShardPlanOptions options;
      options.pitch = 11;
      options.halo_pitches = halo_pitches;
      const ShardPlan got = build_shard_plan(
          inst.nets_by_position, inst.terminals_by_position, options);
      const ShardPlan want = reference_plan(inst, options);
      expect_same_plan(got, want);
    }
  }
}

TEST(ShardPartition, HundredThousandNetPlan) {
  // Production scale: planning 100k local nets on a 200k die must finish
  // in test time (near-linear, not O(n * batch width)) and still satisfy
  // every invariant. Disjointness is verified with an x-sweep instead of
  // the O(batch^2) pairwise check.
  const Instance inst = random_instance(23, 200000, 100000, 150, 101);
  ShardPlanOptions options;
  options.pitch = 11;
  options.halo_pitches = 16;
  const ShardPlan plan = build_shard_plan(inst.nets_by_position,
                                          inst.terminals_by_position,
                                          options);
  ASSERT_EQ(plan.positions(), inst.nets.size());
  // Order-convex cover.
  std::size_t next = 0;
  for (const ShardBatch& batch : plan.batches) {
    ASSERT_EQ(batch.begin, next);
    ASSERT_GT(batch.end, batch.begin);
    next = batch.end;
  }
  ASSERT_EQ(next, inst.nets.size());
  // Per-batch disjointness by sweep: sort members by region xlo, keep an
  // active set pruned by xhi, and y-compare only x-overlapping pairs.
  for (const ShardBatch& batch : plan.batches) {
    std::vector<std::size_t> members;
    for (std::size_t k = batch.begin; k < batch.end; ++k) {
      if (plan.has_region[k]) members.push_back(k);
    }
    std::sort(members.begin(), members.end(),
              [&](std::size_t a, std::size_t b) {
                return plan.regions[a].xlo < plan.regions[b].xlo;
              });
    std::vector<std::size_t> active;
    for (const std::size_t k : members) {
      const geom::Rect& r = plan.regions[k];
      std::vector<std::size_t> still;
      for (const std::size_t a : active) {
        if (plan.regions[a].xhi >= r.xlo) {
          still.push_back(a);
          ASSERT_FALSE(plan.regions[a].overlaps(r))
              << "members " << a << " and " << k << " overlap";
        }
      }
      active = std::move(still);
      active.push_back(k);
    }
  }
  // The workload is local by construction: the plan must expose real
  // parallelism, and the sensitive cadence must cap nothing at 1.
  EXPECT_GT(plan.mean_batch(), 4.0);
  EXPECT_GT(plan.max_batch(), 16u);
}

TEST(ShardPartition, EmptyInstance) {
  const ShardPlan plan = build_shard_plan({}, {}, ShardPlanOptions{11, 4});
  EXPECT_TRUE(plan.batches.empty());
  EXPECT_EQ(plan.positions(), 0u);
  EXPECT_EQ(plan.max_batch(), 0u);
  EXPECT_EQ(plan.mean_batch(), 0.0);
}

}  // namespace
}  // namespace ocr::engine

#include <gtest/gtest.h>

#include "bench_data/synthetic.hpp"
#include "channel/greedy.hpp"
#include "global/global_router.hpp"

namespace ocr::global {
namespace {

using floorplan::MacroCell;
using floorplan::MacroLayout;
using floorplan::MacroNet;
using floorplan::MacroPin;

MacroLayout two_row_layout() {
  MacroLayout ml("g", 600);
  ml.add_row(100);
  ml.add_row(100);
  ml.add_cell(MacroCell{"a", 200, 100, 0, 50});
  ml.add_cell(MacroCell{"b", 200, 100, 0, 350});
  ml.add_cell(MacroCell{"c", 200, 100, 1, 50});
  ml.add_cell(MacroCell{"d", 200, 100, 1, 350});
  return ml;
}

TEST(Global, SingleChannelNet) {
  MacroLayout ml = two_row_layout();
  const int n = ml.add_net(MacroNet{"n", netlist::NetClass::kSignal});
  ml.add_pin(MacroPin{n, 0, true, 60});   // a north -> channel 1
  ml.add_pin(MacroPin{n, 2, false, 60});  // c south -> channel 1
  const auto result = global_route(ml, {n});
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(result.feedthroughs.empty());
  // Channel 1 has one bottom pin (from a) and one top pin (from c).
  int tops = 0;
  int bots = 0;
  for (int v : result.channels[1].top) tops += (v != 0);
  for (int v : result.channels[1].bot) bots += (v != 0);
  EXPECT_EQ(tops, 1);
  EXPECT_EQ(bots, 1);
  // Other channels untouched.
  EXPECT_EQ(result.channels[0].max_net(), 0);
  EXPECT_EQ(result.channels[2].max_net(), 0);
}

TEST(Global, CrossChannelNetGetsFeedthrough) {
  MacroLayout ml = two_row_layout();
  const int n = ml.add_net(MacroNet{"n", netlist::NetClass::kSignal});
  ml.add_pin(MacroPin{n, 0, false, 60});  // a south -> channel 0
  ml.add_pin(MacroPin{n, 2, true, 60});   // c north -> channel 2
  const auto result = global_route(ml, {n});
  ASSERT_TRUE(result.success);
  // Crosses rows 0 and 1 -> 2 feedthroughs.
  EXPECT_EQ(result.feedthroughs.size(), 2u);
  EXPECT_EQ(result.feedthrough_length, 200);
  EXPECT_EQ(result.feedthrough_vias, 4);
  // Channel 1 sees two feedthrough pins.
  int pins = 0;
  for (int v : result.channels[1].top) pins += (v != 0);
  for (int v : result.channels[1].bot) pins += (v != 0);
  EXPECT_EQ(pins, 2);
}

TEST(Global, FeedthroughLandsInGap) {
  MacroLayout ml = two_row_layout();
  const int n = ml.add_net(MacroNet{"n", netlist::NetClass::kSignal});
  ml.add_pin(MacroPin{n, 0, false, 60});
  ml.add_pin(MacroPin{n, 2, true, 60});
  const auto result = global_route(ml, {n});
  ASSERT_TRUE(result.success);
  for (const Feedthrough& f : result.feedthroughs) {
    const geom::Coord x = static_cast<geom::Coord>(f.column) *
                              result.column_pitch +
                          result.column_pitch / 2;
    bool in_gap = false;
    for (const auto& gap : ml.row_gaps(f.row)) {
      if (gap.contains(x)) in_gap = true;
    }
    EXPECT_TRUE(in_gap) << "feedthrough outside gaps at row " << f.row;
  }
}

TEST(Global, PadsLandOnBoundaryChannels) {
  MacroLayout ml = two_row_layout();
  const int n = ml.add_net(MacroNet{"n", netlist::NetClass::kSignal});
  ml.add_pin(MacroPin{n, -1, false, 300});  // bottom pad
  ml.add_pin(MacroPin{n, 0, false, 60});    // channel 0 top
  const auto result = global_route(ml, {n});
  ASSERT_TRUE(result.success);
  int bot_pins = 0;
  for (int v : result.channels[0].bot) bot_pins += (v != 0);
  EXPECT_EQ(bot_pins, 1);
}

TEST(Global, ColumnCollisionResolved) {
  MacroLayout ml = two_row_layout();
  const int n1 = ml.add_net(MacroNet{"n1", netlist::NetClass::kSignal});
  const int n2 = ml.add_net(MacroNet{"n2", netlist::NetClass::kSignal});
  // Both nets pin at the same x on the same boundary.
  ml.add_pin(MacroPin{n1, 0, true, 60});
  ml.add_pin(MacroPin{n1, 2, false, 100});
  ml.add_pin(MacroPin{n2, 0, true, 60});  // same slot as n1's first pin
  ml.add_pin(MacroPin{n2, 2, false, 160});
  const auto result = global_route(ml, {n1, n2});
  ASSERT_TRUE(result.success);
  // Both present in channel 1 without clobbering each other.
  std::set<int> nets_seen;
  for (int v : result.channels[1].bot) {
    if (v != 0) nets_seen.insert(v);
  }
  EXPECT_EQ(nets_seen.size(), 2u);
}

TEST(Global, ChannelsAreRoutable) {
  // End-to-end: generated instance, all nets -> channels must route.
  const auto ml = bench_data::generate_macro_layout(
      bench_data::random_spec(11, 0.5));
  std::vector<int> nets;
  for (int n = 0; n < static_cast<int>(ml.nets().size()); ++n) {
    nets.push_back(n);
  }
  const auto result = global_route(ml, nets);
  ASSERT_TRUE(result.success)
      << (result.problems.empty() ? "" : result.problems[0]);
  for (const auto& problem : result.channels) {
    const auto route = channel::route_greedy(problem);
    EXPECT_TRUE(route.success) << route.failure_reason;
    if (route.success) {
      const auto violations = channel::validate_route(problem, route);
      EXPECT_TRUE(violations.empty())
          << (violations.empty() ? "" : violations[0]);
    }
  }
}

TEST(Global, DistinctFeedthroughColumnsPerRow) {
  const auto ml = bench_data::generate_macro_layout(
      bench_data::random_spec(13, 0.5));
  std::vector<int> nets;
  for (int n = 0; n < static_cast<int>(ml.nets().size()); ++n) {
    nets.push_back(n);
  }
  const auto result = global_route(ml, nets);
  std::set<std::pair<int, int>> slots;
  for (const Feedthrough& f : result.feedthroughs) {
    EXPECT_TRUE(slots.insert({f.row, f.column}).second)
        << "feedthrough slot reused";
  }
}

}  // namespace
}  // namespace ocr::global

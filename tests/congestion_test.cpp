#include <gtest/gtest.h>

#include "tig/congestion.hpp"

namespace ocr::tig {
namespace {

using geom::Interval;
using geom::Rect;

TEST(Congestion, EmptyGridIsZero) {
  const auto grid = TrackGrid::uniform(Rect(0, 0, 400, 400), 10, 10);
  const auto report = analyze_congestion(grid, 4);
  EXPECT_DOUBLE_EQ(report.horizontal.mean_utilization, 0.0);
  EXPECT_DOUBLE_EQ(report.vertical.mean_utilization, 0.0);
  EXPECT_DOUBLE_EQ(report.peak_region(), 0.0);
  EXPECT_EQ(report.horizontal.full_tracks, 0);
}

TEST(Congestion, FullyBlockedGridIsOne) {
  auto grid = TrackGrid::uniform(Rect(0, 0, 400, 400), 10, 10);
  grid.block_region_h(Rect(0, 0, 400, 400));
  grid.block_region_v(Rect(0, 0, 400, 400));
  const auto report = analyze_congestion(grid, 4);
  EXPECT_GT(report.horizontal.mean_utilization, 0.99);
  EXPECT_GT(report.vertical.mean_utilization, 0.99);
  EXPECT_GT(report.peak_region(), 0.99);
  EXPECT_EQ(report.horizontal.full_tracks, grid.num_h());
  EXPECT_EQ(report.vertical.full_tracks, grid.num_v());
}

TEST(Congestion, HotspotShowsInOneRegion) {
  auto grid = TrackGrid::uniform(Rect(0, 0, 400, 400), 10, 10);
  // Block the bottom-left quadrant densely (both layers).
  grid.block_region_h(Rect(0, 0, 100, 100));
  grid.block_region_v(Rect(0, 0, 100, 100));
  const auto report = analyze_congestion(grid, 4);
  // Bin (0,0) should dominate.
  const double corner = report.region_utilization[0];
  EXPECT_GT(corner, 0.5);
  // Far corner untouched.
  const double far = report.region_utilization.back();
  EXPECT_LT(far, 0.05);
}

TEST(Congestion, MeanMatchesHandComputation) {
  auto grid = TrackGrid::uniform(Rect(0, 0, 100, 100), 10, 10);
  // Block exactly half of one horizontal track (of 10).
  grid.block_h(0, Interval(0, 50));
  const auto report = analyze_congestion(grid);
  EXPECT_NEAR(report.horizontal.mean_utilization, 0.05, 0.01);
  EXPECT_NEAR(report.horizontal.max_utilization, 0.5, 0.01);
}

TEST(Congestion, ToStringRendersHeatMap) {
  auto grid = TrackGrid::uniform(Rect(0, 0, 400, 400), 10, 10);
  grid.block_region_h(Rect(0, 0, 400, 400));
  grid.block_region_v(Rect(0, 0, 400, 400));
  const auto report = analyze_congestion(grid, 4);
  const std::string text = report.to_string();
  EXPECT_NE(text.find("horizontal tracks"), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);  // hot cells
}

class CongestionBinSweep : public ::testing::TestWithParam<int> {};

TEST_P(CongestionBinSweep, RegionCountMatchesBins) {
  auto grid = TrackGrid::uniform(Rect(0, 0, 300, 300), 10, 10);
  grid.block_region_h(Rect(50, 50, 250, 250));
  const auto report = analyze_congestion(grid, GetParam());
  EXPECT_EQ(report.bins, GetParam());
  EXPECT_EQ(report.region_utilization.size(),
            static_cast<std::size_t>(GetParam()) * GetParam());
  for (double u : report.region_utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Bins, CongestionBinSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace ocr::tig

/// \file scheduler_test.cpp
/// \brief NetScheduler unit tests: window bounds, conflict-aware claim
/// ordering, adaptive lookahead, exhaustion. All single-threaded — the
/// scheduler's blocking paths are exercised by the engine stress tests;
/// here every wait would deadlock, so the cases only claim positions that
/// are already inside the window.

#include <gtest/gtest.h>

#include <vector>

#include "engine/scheduler.hpp"

namespace ocr::engine {
namespace {

using geom::Rect;

std::size_t must_claim(NetScheduler& s) {
  const auto c = s.claim();
  EXPECT_TRUE(c.has_value());
  return c->position;
}

TEST(NetScheduler, HandsOutPositionsInOrderWithoutHints) {
  NetScheduler s(5, /*lookahead=*/3, /*measure_wait=*/false);
  EXPECT_EQ(must_claim(s), 0u);
  EXPECT_EQ(must_claim(s), 1u);
  EXPECT_EQ(must_claim(s), 2u);
  // Window [0, 3) exhausted; committing opens the next position.
  s.on_committed(1);
  EXPECT_EQ(must_claim(s), 3u);
  s.on_committed(2);
  EXPECT_EQ(must_claim(s), 4u);
  EXPECT_EQ(s.claim(), std::nullopt);  // every position handed out
  EXPECT_EQ(s.claim(), std::nullopt);  // stays exhausted
}

TEST(NetScheduler, CommittedTracksTheCounter) {
  NetScheduler s(4, 2, false);
  EXPECT_EQ(s.committed(), 0u);
  s.on_committed(3);
  EXPECT_EQ(s.committed(), 3u);
}

TEST(NetScheduler, ConflictHintsPreferIndependentPositions) {
  // Boxes: 0 and 1 overlap each other; 2 is far away. After claiming 0,
  // position 1 overlaps the uncommitted 0 (penalty 1) while 2 overlaps
  // nothing — so 2 is claimed before 1.
  NetScheduler s(3, /*lookahead=*/3, false);
  s.set_conflict_hints({Rect(0, 0, 10, 10), Rect(5, 5, 15, 15),
                        Rect(100, 100, 120, 120)});
  EXPECT_EQ(must_claim(s), 0u);  // head: penalty 0 by definition
  EXPECT_EQ(must_claim(s), 2u);  // skips the conflicted 1
  EXPECT_EQ(must_claim(s), 1u);  // last one left
  EXPECT_EQ(s.claim(), std::nullopt);
}

TEST(NetScheduler, ConflictPenaltyIgnoresCommittedPositions) {
  // Same boxes, but position 0 commits before 1 is claimed: the overlap
  // with 0 no longer predicts an abort (its commit is already in every
  // later snapshot), so 1 regains priority over 2.
  NetScheduler s(3, 3, false);
  s.set_conflict_hints({Rect(0, 0, 10, 10), Rect(5, 5, 15, 15),
                        Rect(100, 100, 120, 120)});
  EXPECT_EQ(must_claim(s), 0u);
  s.on_committed(1);
  EXPECT_EQ(must_claim(s), 1u);
  EXPECT_EQ(must_claim(s), 2u);
}

TEST(NetScheduler, HeadOfWindowNeverStarves) {
  // Position 1 conflicts with 0; everything else is independent. Claims
  // defer 1 while it carries a penalty, but once the committer reaches
  // it, 1 is the window head (penalty definitionally 0) and is handed
  // out next — no later independent position can leapfrog it forever.
  NetScheduler s(5, 4, false);
  s.set_conflict_hints({Rect(0, 0, 10, 10), Rect(5, 5, 15, 15),
                        Rect(100, 100, 110, 110), Rect(200, 200, 210, 210),
                        Rect(300, 300, 310, 310)});
  EXPECT_EQ(must_claim(s), 0u);
  EXPECT_EQ(must_claim(s), 2u);
  EXPECT_EQ(must_claim(s), 3u);
  s.on_committed(1);  // window now [1, 5): head is the deferred 1
  EXPECT_EQ(must_claim(s), 1u);
  EXPECT_EQ(must_claim(s), 4u);
}

TEST(NetScheduler, AdaptiveLookaheadWidensWhileAbortsAreRare) {
  NetScheduler s(1000, /*lookahead=*/4, false);
  s.set_max_lookahead(8);
  EXPECT_EQ(s.lookahead(), 4u);
  // An all-accepted verdict history widens one step per commit once the
  // rolling window (32) is full, up to the cap.
  for (std::size_t k = 0; k < 40; ++k) {
    s.on_committed(k + 1, /*accepted=*/true);
  }
  EXPECT_EQ(s.lookahead(), 8u);
  EXPECT_EQ(s.peak_lookahead(), 8u);
}

TEST(NetScheduler, AdaptiveLookaheadShrinksUnderAborts) {
  NetScheduler s(1000, 4, false);
  s.set_max_lookahead(8);
  std::size_t k = 0;
  for (; k < 40; ++k) s.on_committed(k + 1, true);
  ASSERT_EQ(s.lookahead(), 8u);
  // A burst of aborts drags the rolling abort rate over the shrink
  // threshold; the width falls back toward the base but never below it.
  for (; k < 120; ++k) s.on_committed(k + 1, /*accepted=*/false);
  EXPECT_EQ(s.lookahead(), 4u);
  EXPECT_EQ(s.peak_lookahead(), 8u);  // peak remembers the widest point
}

TEST(NetScheduler, FixedLookaheadStaysFixedWithoutMax) {
  // Without set_max_lookahead the width is pinned to the base — the
  // adaptive controller only runs when given headroom.
  NetScheduler s(1000, 4, false);
  for (std::size_t k = 0; k < 100; ++k) s.on_committed(k + 1, true);
  EXPECT_EQ(s.lookahead(), 4u);
  EXPECT_EQ(s.peak_lookahead(), 4u);
}

TEST(NetScheduler, MeasuresQueueWaitWhenAsked) {
  NetScheduler s(2, 1, /*measure_wait=*/true);
  const auto c = s.claim();
  ASSERT_TRUE(c.has_value());
  EXPECT_GE(c->queue_wait_us, 0);
}

}  // namespace
}  // namespace ocr::engine

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <tuple>

#include "io/route_io.hpp"
#include "levelb/router.hpp"
#include "util/rng.hpp"

namespace ocr::io {
namespace {

using geom::Point;
using geom::Rect;

levelb::LevelBResult route_something() {
  auto grid = tig::TrackGrid::uniform(Rect(0, 0, 300, 300), 10, 10);
  levelb::LevelBRouter router(grid);
  return router.route({
      levelb::BNet{1, {Point{5, 5}, Point{295, 205}}},
      levelb::BNet{2, {Point{5, 295}, Point{295, 5}, Point{155, 155}}},
  });
}

TEST(RouteIo, RoundTripPreservesTotals) {
  const auto original = route_something();
  const auto parsed = read_wiring_text(write_wiring_text(original));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.result->nets.size(), original.nets.size());
  EXPECT_EQ(parsed.result->total_wire_length, original.total_wire_length);
  EXPECT_EQ(parsed.result->total_corners, original.total_corners);
  EXPECT_EQ(parsed.result->routed_nets, original.routed_nets);
  EXPECT_EQ(parsed.result->failed_nets, original.failed_nets);
}

TEST(RouteIo, LegGeometryPreserved) {
  const auto original = route_something();
  const auto parsed = read_wiring_text(write_wiring_text(original));
  ASSERT_TRUE(parsed.ok());
  // Collect all leg endpoints from both and compare as multisets.
  const auto collect = [](const levelb::LevelBResult& r) {
    std::multiset<std::tuple<geom::Coord, geom::Coord, geom::Coord,
                             geom::Coord>>
        legs;
    for (const auto& net : r.nets) {
      for (const auto& path : net.paths) {
        for (std::size_t leg = 0; leg + 1 < path.points.size(); ++leg) {
          legs.insert({path.points[leg].x, path.points[leg].y,
                       path.points[leg + 1].x, path.points[leg + 1].y});
        }
      }
    }
    return legs;
  };
  EXPECT_EQ(collect(original), collect(*parsed.result));
}

TEST(RouteIo, ViaLayersConsistent) {
  const auto original = route_something();
  const std::string text = write_wiring_text(original);
  // Every leg declares metal3 (horizontal) or metal4 (vertical), matching
  // its geometry.
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.rfind("leg ", 0) != 0) continue;
    std::istringstream fields(line);
    std::string kw;
    std::string layer;
    long long x1 = 0;
    long long y1 = 0;
    long long x2 = 0;
    long long y2 = 0;
    fields >> kw >> layer >> x1 >> y1 >> x2 >> y2;
    if (layer == "metal3") {
      EXPECT_EQ(y1, y2) << line;
    } else {
      EXPECT_EQ(x1, x2) << line;
    }
  }
}

TEST(RouteIo, ErrorsNameTheLine) {
  const auto parsed =
      read_wiring_text("wiring 1\nnet 1 1\nleg metal9 0 0 5 0\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("line 3"), std::string::npos);
}

TEST(RouteIo, RejectsDiagonalLeg) {
  const auto parsed =
      read_wiring_text("wiring 1\nnet 1 1\nleg metal3 0 0 5 5\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("axis-aligned"), std::string::npos);
}

TEST(RouteIo, RejectsLegBeforeNet) {
  const auto parsed = read_wiring_text("wiring 1\nleg metal3 0 0 5 0\n");
  EXPECT_FALSE(parsed.ok());
}

TEST(RouteIo, RejectsMissingHeader) {
  const auto parsed = read_wiring_text("net 1 1\n");
  EXPECT_FALSE(parsed.ok());
}

TEST(RouteIo, FileSave) {
  const auto original = route_something();
  const std::string path = ::testing::TempDir() + "/ocr_wiring_test.txt";
  ASSERT_TRUE(save_wiring(original, path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ocr::io

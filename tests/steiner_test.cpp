#include <gtest/gtest.h>

#include <vector>

#include "steiner/exact.hpp"
#include "steiner/rmst.hpp"
#include "steiner/rst.hpp"
#include "util/rng.hpp"

namespace ocr::steiner {
namespace {

using geom::Point;

TEST(Rmst, SingleTerminal) {
  const auto tree = rectilinear_mst({Point{3, 3}});
  EXPECT_TRUE(tree.edges.empty());
  EXPECT_EQ(tree.length, 0);
}

TEST(Rmst, TwoTerminals) {
  const auto tree = rectilinear_mst({Point{0, 0}, Point{3, 4}});
  ASSERT_EQ(tree.edges.size(), 1u);
  EXPECT_EQ(tree.length, 7);
}

TEST(Rmst, CollinearChain) {
  const auto tree =
      rectilinear_mst({Point{0, 0}, Point{10, 0}, Point{5, 0}, Point{2, 0}});
  EXPECT_EQ(tree.edges.size(), 3u);
  EXPECT_EQ(tree.length, 10);
}

TEST(Rmst, CrossNeedsSteinerToImprove) {
  // A plus-shape: MST is 3 arms + 1 long hop; Steiner would do better.
  const std::vector<Point> cross{{0, 5}, {10, 5}, {5, 0}, {5, 10}};
  const auto tree = rectilinear_mst(cross);
  EXPECT_EQ(tree.edges.size(), 3u);
  EXPECT_EQ(tree.length, 30);  // three edges of length 10
}

TEST(Rst, SingleAndTwoTerminals) {
  const auto single = modified_prim_rst({Point{1, 1}});
  EXPECT_TRUE(single.edges.empty());
  EXPECT_TRUE(validate_topology(single).empty());

  const auto pair = modified_prim_rst({Point{0, 0}, Point{4, 7}});
  EXPECT_EQ(pair.length, 11);
  EXPECT_TRUE(validate_topology(pair).empty());
}

TEST(Rst, CrossUsesSteinerPoint) {
  const std::vector<Point> cross{{0, 5}, {10, 5}, {5, 0}, {5, 10}};
  const auto topo = modified_prim_rst(cross);
  EXPECT_TRUE(validate_topology(topo).empty());
  // Optimal RSMT is 20 (the plus through (5,5)); the heuristic should find
  // it here because attachments land on existing segments.
  EXPECT_EQ(topo.length, 20);
  EXPECT_GT(topo.nodes.size(), cross.size());  // introduced a Steiner point
}

TEST(Rst, NeverWorseThanMst) {
  util::Rng rng(77);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<Point> pts;
    const int n = static_cast<int>(rng.uniform_int(2, 12));
    for (int i = 0; i < n; ++i) {
      pts.push_back(Point{rng.uniform_int(0, 100), rng.uniform_int(0, 100)});
    }
    const auto mst = rectilinear_mst(pts);
    const auto rst = modified_prim_rst(pts);
    EXPECT_TRUE(validate_topology(rst).empty()) << "trial " << trial;
    EXPECT_LE(rst.length, mst.length) << "trial " << trial;
  }
}

TEST(Rst, DuplicateTerminalsHandled) {
  const auto topo =
      modified_prim_rst({Point{2, 2}, Point{2, 2}, Point{5, 2}});
  EXPECT_TRUE(validate_topology(topo).empty());
  EXPECT_EQ(topo.length, 3);
}

TEST(Rst, TwoTerminalConnectionsDropZeroLength) {
  const auto topo =
      modified_prim_rst({Point{2, 2}, Point{2, 2}, Point{5, 2}});
  const auto conns = two_terminal_connections(topo);
  for (const auto& [a, b] : conns) EXPECT_NE(a, b);
}

TEST(Rst, LShapeConnectionIsRectilinear) {
  const auto topo = modified_prim_rst({Point{0, 0}, Point{6, 9}});
  EXPECT_TRUE(validate_topology(topo).empty());
  // Two edges through one corner node.
  EXPECT_EQ(topo.edges.size(), 2u);
  EXPECT_EQ(topo.nodes.size(), 3u);
}

TEST(ExactRsmt, MatchesKnownOptima) {
  // Two points: Manhattan distance.
  EXPECT_EQ(exact_rsmt_length({Point{0, 0}, Point{3, 4}}), 7);
  // Plus shape: 20.
  EXPECT_EQ(exact_rsmt_length({{0, 5}, {10, 5}, {5, 0}, {5, 10}}), 20);
  // Unit square corners: 3 sides.
  EXPECT_EQ(exact_rsmt_length({{0, 0}, {0, 1}, {1, 0}, {1, 1}}), 3);
}

TEST(ExactRsmt, LowerBoundsHeuristicAndHalfMst) {
  util::Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<Point> pts;
    const int n = static_cast<int>(rng.uniform_int(2, 5));
    for (int i = 0; i < n; ++i) {
      pts.push_back(Point{rng.uniform_int(0, 30), rng.uniform_int(0, 30)});
    }
    const auto exact = exact_rsmt_length(pts);
    const auto rst = modified_prim_rst(pts);
    const auto mst = rectilinear_mst(pts);
    EXPECT_LE(exact, rst.length) << "trial " << trial;
    // Hwang's bound: MST <= 1.5 * RSMT.
    EXPECT_LE(mst.length * 2, exact * 3) << "trial " << trial;
  }
}

TEST(Validate, CatchesNonRectilinearEdge) {
  SteinerTopology topo;
  topo.nodes = {Point{0, 0}, Point{3, 4}};
  topo.num_terminals = 2;
  topo.edges = {TreeEdge{0, 1}};
  topo.length = 7;
  const auto problems = validate_topology(topo);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("axis-aligned"), std::string::npos);
}

TEST(Validate, CatchesDisconnectedTerminal) {
  SteinerTopology topo;
  topo.nodes = {Point{0, 0}, Point{5, 0}, Point{9, 0}};
  topo.num_terminals = 3;
  topo.edges = {TreeEdge{0, 1}};
  topo.length = 5;
  const auto problems = validate_topology(topo);
  ASSERT_FALSE(problems.empty());
}

TEST(Validate, CatchesWrongLength) {
  SteinerTopology topo;
  topo.nodes = {Point{0, 0}, Point{5, 0}};
  topo.num_terminals = 2;
  topo.edges = {TreeEdge{0, 1}};
  topo.length = 4;  // lie
  const auto problems = validate_topology(topo);
  ASSERT_FALSE(problems.empty());
}

}  // namespace
}  // namespace ocr::steiner

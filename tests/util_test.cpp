#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

namespace ocr::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, IndexWithinBounds) {
  Rng rng(13);
  for (int i = 0; i < 200; ++i) EXPECT_LT(rng.index(17), 17u);
}

TEST(Str, Format) {
  EXPECT_EQ(format("net %d at %s", 3, "c7"), "net 3 at c7");
  EXPECT_EQ(format("%s", ""), "");
}

TEST(Str, SplitAndJoin) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join(parts, "-"), "a-b--c");
}

TEST(Str, Trim) {
  EXPECT_EQ(trim("  x y \n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
}

TEST(Str, StartsWith) {
  EXPECT_TRUE(starts_with("metal3", "metal"));
  EXPECT_FALSE(starts_with("m", "metal"));
}

TEST(Str, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1874880), "1,874,880");
  EXPECT_EQ(with_commas(-1234567), "-1,234,567");
}

TEST(Table, RendersAlignedColumns) {
  TextTable t;
  t.set_header({"Example", "Area"});
  t.add_row({"ami33", "1,874,880"});
  t.add_row({"ex3", "3,061,635"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| Example |"), std::string::npos);
  EXPECT_NE(out.find("| ami33   |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, SeparatorInsertsRule) {
  TextTable t;
  t.set_header({"A"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // header rule + top + bottom + separator = 4 rules
  std::size_t rules = 0;
  for (std::size_t pos = out.find("+--"); pos != std::string::npos;
       pos = out.find("+--", pos + 1)) {
    ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

}  // namespace
}  // namespace ocr::util

/// \file journal_test.cpp
/// \brief Durable job-journal tests: record codec round-trips, append
/// durability and sequencing, recovery folding (unfinished / replay /
/// dedupe outcomes), torn-tail tolerance and the journal chaos sites.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "io/journal_io.hpp"
#include "service/journal.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"

namespace ocr::service {
namespace {

/// cwd-relative scratch file, removed on destruction (same idiom as
/// trace_test's WriteJsonFile).
struct ScratchFile {
  explicit ScratchFile(std::string name) : path(std::move(name)) {
    std::remove(path.c_str());
  }
  ~ScratchFile() { std::remove(path.c_str()); }
  std::string path;
};

io::JournalRecord accepted(const std::string& id, const std::string& request) {
  io::JournalRecord r;
  r.event = io::JournalEvent::kAccepted;
  r.id = id;
  r.request = request;
  return r;
}

io::JournalRecord started(const std::string& id, int attempt = 0) {
  io::JournalRecord r;
  r.event = io::JournalEvent::kStarted;
  r.id = id;
  r.attempt = attempt;
  return r;
}

io::JournalRecord completed(const std::string& id, long long wire_length) {
  io::JournalRecord r;
  r.event = io::JournalEvent::kCompleted;
  r.id = id;
  r.status = "clean";
  r.exit_class = 0;
  r.wire_length = wire_length;
  r.vias = 7;
  r.run_ms = 3;
  return r;
}

io::JournalRecord responded(const std::string& id) {
  io::JournalRecord r;
  r.event = io::JournalEvent::kResponded;
  r.id = id;
  return r;
}

io::JournalRecord drain(int unfinished) {
  io::JournalRecord r;
  r.event = io::JournalEvent::kDrain;
  r.unfinished = unfinished;
  return r;
}

std::vector<std::string> file_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(JournalCodec, EveryEventRoundTrips) {
  using io::JournalEvent;
  for (const JournalEvent event :
       {JournalEvent::kAccepted, JournalEvent::kStarted, JournalEvent::kRetry,
        JournalEvent::kCompleted, JournalEvent::kFailed,
        JournalEvent::kResponded, JournalEvent::kDrain}) {
    io::JournalRecord record;
    record.event = event;
    record.seq = 42;
    record.id = event == JournalEvent::kDrain ? "" : "job-1";
    record.attempt = 2;
    record.request = "{\"id\":\"job-1\"}";
    record.status = "failed";
    record.exit_class = 1;
    record.wire_length = 123;
    record.vias = 4;
    record.unrouted_nets = 1;
    record.cancelled_nets = 2;
    record.run_ms = 9;
    record.error = "boom \"quoted\"";
    record.backoff_ms = 20;
    record.unfinished = 3;

    const std::string line = io::render_journal_record(record);
    SCOPED_TRACE(line);
    const auto parsed = io::parse_journal_record(line);
    ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
    EXPECT_EQ(parsed->event, event);
    EXPECT_EQ(parsed->seq, 42);
    switch (event) {
      case JournalEvent::kAccepted:
        EXPECT_EQ(parsed->request, record.request);
        EXPECT_EQ(parsed->attempt, 2);
        break;
      case JournalEvent::kRetry:
        EXPECT_EQ(parsed->backoff_ms, 20);
        EXPECT_EQ(parsed->error, record.error);
        break;
      case JournalEvent::kCompleted:
      case JournalEvent::kFailed:
        EXPECT_EQ(parsed->status, "failed");
        EXPECT_EQ(parsed->exit_class, 1);
        EXPECT_EQ(parsed->wire_length, 123);
        EXPECT_EQ(parsed->vias, 4);
        EXPECT_EQ(parsed->unrouted_nets, 1);
        EXPECT_EQ(parsed->cancelled_nets, 2);
        EXPECT_EQ(parsed->run_ms, 9);
        EXPECT_EQ(parsed->error, record.error);
        break;
      case JournalEvent::kDrain:
        EXPECT_EQ(parsed->unfinished, 3);
        break;
      default:
        break;
    }
  }
}

TEST(JournalCodec, RejectsDamagedRecords) {
  // Unknown event name.
  EXPECT_FALSE(io::parse_journal_record(
                   "{\"event\":\"exploded\",\"seq\":1,\"id\":\"a\"}")
                   .ok());
  // Missing id on a non-drain record.
  EXPECT_FALSE(
      io::parse_journal_record("{\"event\":\"started\",\"seq\":1}").ok());
  // Terminal record without a status digest.
  EXPECT_FALSE(io::parse_journal_record(
                   "{\"event\":\"completed\",\"seq\":1,\"id\":\"a\"}")
                   .ok());
  // Accepted without the request payload cannot be replayed.
  EXPECT_FALSE(io::parse_journal_record(
                   "{\"event\":\"accepted\",\"seq\":1,\"id\":\"a\"}")
                   .ok());
  // Plain JSON damage.
  EXPECT_FALSE(io::parse_journal_record("{\"event\":\"sta").ok());
}

TEST(Journal, AppendsAssignSequenceNumbers) {
  ScratchFile scratch("journal_test_seq.jsonl");
  Journal journal;
  ASSERT_TRUE(journal.open(scratch.path).ok());
  ASSERT_TRUE(journal.append(accepted("a", "{}")).ok());
  ASSERT_TRUE(journal.append(started("a")).ok());
  ASSERT_TRUE(journal.append(completed("a", 10)).ok());
  journal.close();

  const auto lines = file_lines(scratch.path);
  ASSERT_EQ(lines.size(), 3u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto parsed = io::parse_journal_record(lines[i]);
    ASSERT_TRUE(parsed.ok()) << lines[i];
    EXPECT_EQ(parsed->seq, static_cast<long long>(i + 1));
  }
}

TEST(Journal, SetNextSeqContinuesAfterRecovery) {
  ScratchFile scratch("journal_test_seq2.jsonl");
  Journal journal;
  ASSERT_TRUE(journal.open(scratch.path).ok());
  journal.set_next_seq(41);
  ASSERT_TRUE(journal.append(accepted("a", "{}")).ok());
  journal.close();
  const auto lines = file_lines(scratch.path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(io::parse_journal_record(lines[0])->seq, 42);
}

TEST(Journal, TerminalRecordsForceFsyncBatchedOnesDoNot) {
  auto& registry = util::MetricsRegistry::global();
  const long long before = registry.counter("service.journal_fsyncs").value();

  ScratchFile scratch("journal_test_fsync.jsonl");
  Journal journal;
  Journal::Options options;
  options.fsync_every = 100;  // batching alone would never sync here
  ASSERT_TRUE(journal.open(scratch.path, options).ok());
  ASSERT_TRUE(journal.append(accepted("a", "{}")).ok());
  ASSERT_TRUE(journal.append(started("a")).ok());
  EXPECT_EQ(registry.counter("service.journal_fsyncs").value(), before);

  ASSERT_TRUE(journal.append(completed("a", 10)).ok());  // terminal
  EXPECT_EQ(registry.counter("service.journal_fsyncs").value(), before + 1);
  journal.close();
}

TEST(Journal, FsyncEveryBatchesNonTerminalAppends) {
  auto& registry = util::MetricsRegistry::global();
  const long long before = registry.counter("service.journal_fsyncs").value();

  ScratchFile scratch("journal_test_batch.jsonl");
  Journal journal;
  Journal::Options options;
  options.fsync_every = 3;
  ASSERT_TRUE(journal.open(scratch.path, options).ok());
  ASSERT_TRUE(journal.append(accepted("a", "{}")).ok());
  ASSERT_TRUE(journal.append(accepted("b", "{}")).ok());
  EXPECT_EQ(registry.counter("service.journal_fsyncs").value(), before);
  ASSERT_TRUE(journal.append(accepted("c", "{}")).ok());  // third: batch sync
  EXPECT_EQ(registry.counter("service.journal_fsyncs").value(), before + 1);
  journal.close();
}

TEST(Journal, AppendFaultSiteSurfacesIoError) {
  auto& chaos = util::FaultRegistry::service();
  ASSERT_TRUE(chaos.configure("service.journal.append=2").ok());
  ScratchFile scratch("journal_test_fault.jsonl");
  Journal journal;
  ASSERT_TRUE(journal.open(scratch.path).ok());
  EXPECT_TRUE(journal.append(accepted("a", "{}")).ok());
  const util::Status failed = journal.append(started("a"));
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.kind(), util::StatusKind::kIoError);
  EXPECT_TRUE(journal.append(completed("a", 10)).ok());  // keeps serving
  journal.close();
  chaos.clear();
}

TEST(Recovery, MissingFileIsAFreshStart) {
  const auto plan = recover_journal("journal_test_does_not_exist.jsonl");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->jobs.empty());
  EXPECT_EQ(plan->lines_total, 0);
  EXPECT_FALSE(plan->clean_drain);
}

TEST(Recovery, FoldsPerJobOutcomes) {
  ScratchFile scratch("journal_test_fold.jsonl");
  Journal journal;
  ASSERT_TRUE(journal.open(scratch.path).ok());
  // finished + responded: dedupe any resend.
  ASSERT_TRUE(journal.append(accepted("done", "{\"id\":\"done\"}")).ok());
  ASSERT_TRUE(journal.append(started("done")).ok());
  ASSERT_TRUE(journal.append(completed("done", 111)).ok());
  ASSERT_TRUE(journal.append(responded("done")).ok());
  // finished, response never delivered: replay from the digest.
  ASSERT_TRUE(journal.append(accepted("silent", "{\"id\":\"silent\"}")).ok());
  ASSERT_TRUE(journal.append(started("silent")).ok());
  ASSERT_TRUE(journal.append(completed("silent", 222)).ok());
  // accepted + started twice, no terminal: unfinished, re-enqueue.
  ASSERT_TRUE(journal.append(accepted("lost", "{\"id\":\"lost\"}")).ok());
  ASSERT_TRUE(journal.append(started("lost", 0)).ok());
  ASSERT_TRUE(journal.append(started("lost", 1)).ok());
  journal.close();

  const auto plan = recover_journal(scratch.path);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  ASSERT_EQ(plan->jobs.size(), 3u);
  EXPECT_EQ(plan->lines_corrupt, 0);
  EXPECT_EQ(plan->unfinished, 1);
  EXPECT_FALSE(plan->clean_drain);
  EXPECT_EQ(plan->last_seq, 10);

  // First-accepted order is preserved.
  EXPECT_EQ(plan->jobs[0].id, "done");
  EXPECT_TRUE(plan->jobs[0].has_terminal);
  EXPECT_TRUE(plan->jobs[0].responded);
  EXPECT_EQ(plan->jobs[0].terminal.wire_length, 111);

  EXPECT_EQ(plan->jobs[1].id, "silent");
  EXPECT_TRUE(plan->jobs[1].has_terminal);
  EXPECT_FALSE(plan->jobs[1].responded);
  EXPECT_EQ(plan->jobs[1].terminal.wire_length, 222);

  EXPECT_EQ(plan->jobs[2].id, "lost");
  EXPECT_FALSE(plan->jobs[2].has_terminal);
  EXPECT_EQ(plan->jobs[2].attempts, 2);
  EXPECT_EQ(plan->jobs[2].request, "{\"id\":\"lost\"}");
}

TEST(Recovery, TornTailIsSkippedNotFatal) {
  ScratchFile scratch("journal_test_torn.jsonl");
  Journal journal;
  ASSERT_TRUE(journal.open(scratch.path).ok());
  ASSERT_TRUE(journal.append(accepted("a", "{\"id\":\"a\"}")).ok());
  ASSERT_TRUE(journal.append(started("a")).ok());
  ASSERT_TRUE(journal.append(completed("a", 10)).ok());
  journal.close();

  // A SIGKILL mid-write leaves a torn final line: chop the terminal
  // record in half. Recovery must keep the intact prefix and report the
  // damage with a located status, not crash or refuse.
  auto lines = file_lines(scratch.path);
  ASSERT_EQ(lines.size(), 3u);
  std::ofstream out(scratch.path, std::ios::trunc);
  out << lines[0] << "\n" << lines[1] << "\n"
      << lines[2].substr(0, lines[2].size() / 2);
  out.close();

  const auto plan = recover_journal(scratch.path);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->lines_total, 3);
  EXPECT_EQ(plan->lines_corrupt, 1);
  EXPECT_NE(plan->first_corrupt_error.find("line 3"), std::string::npos)
      << plan->first_corrupt_error;
  ASSERT_EQ(plan->jobs.size(), 1u);
  EXPECT_FALSE(plan->jobs[0].has_terminal);  // the torn record is gone
  EXPECT_EQ(plan->unfinished, 1);
}

TEST(Recovery, ReplayFaultSiteDamagesChosenLines) {
  ScratchFile scratch("journal_test_replay_fault.jsonl");
  Journal journal;
  ASSERT_TRUE(journal.open(scratch.path).ok());
  ASSERT_TRUE(journal.append(accepted("a", "{\"id\":\"a\"}")).ok());
  ASSERT_TRUE(journal.append(started("a")).ok());
  ASSERT_TRUE(journal.append(completed("a", 10)).ok());
  journal.close();

  auto& chaos = util::FaultRegistry::service();
  ASSERT_TRUE(chaos.configure("service.journal.replay=@2").ok());
  const auto plan = recover_journal(scratch.path);
  chaos.clear();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->lines_corrupt, 1);  // line 2 damaged in flight
  ASSERT_EQ(plan->jobs.size(), 1u);
  EXPECT_TRUE(plan->jobs[0].has_terminal);  // terminal line was untouched
}

TEST(Recovery, CleanDrainNeedsTrailingEmptyDrainRecord) {
  ScratchFile scratch("journal_test_drain.jsonl");
  {
    Journal journal;
    ASSERT_TRUE(journal.open(scratch.path).ok());
    ASSERT_TRUE(journal.append(accepted("a", "{\"id\":\"a\"}")).ok());
    ASSERT_TRUE(journal.append(completed("a", 10)).ok());
    ASSERT_TRUE(journal.append(responded("a")).ok());
    ASSERT_TRUE(journal.append(drain(0)).ok());
    journal.close();
  }
  auto plan = recover_journal(scratch.path);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->clean_drain);
  EXPECT_EQ(plan->unfinished, 0);

  // A drain that abandoned jobs is not clean.
  {
    Journal journal;
    ASSERT_TRUE(journal.open(scratch.path).ok());
    ASSERT_TRUE(journal.append(accepted("b", "{\"id\":\"b\"}")).ok());
    ASSERT_TRUE(journal.append(drain(1)).ok());
    journal.close();
  }
  plan = recover_journal(scratch.path);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->clean_drain);
  EXPECT_EQ(plan->unfinished, 1);  // "b" must be re-enqueued
}

TEST(Recovery, TerminalWithoutAcceptedIsKeptForDedupe) {
  // The accepted record can be lost to a torn batch while the terminal
  // record (fsynced) survived. The job cannot be replayed, but its
  // outcome must still be recovered so a client resend is answered from
  // the digest instead of re-executed.
  ScratchFile scratch("journal_test_orphan.jsonl");
  {
    Journal journal;
    ASSERT_TRUE(journal.open(scratch.path).ok());
    ASSERT_TRUE(journal.append(completed("orphan", 333)).ok());
    journal.close();
  }
  const auto plan = recover_journal(scratch.path);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->jobs.size(), 1u);
  EXPECT_TRUE(plan->jobs[0].has_terminal);
  EXPECT_TRUE(plan->jobs[0].request.empty());
  EXPECT_EQ(plan->unfinished, 0);
}

}  // namespace
}  // namespace ocr::service

#include <gtest/gtest.h>

#include "levelb/router.hpp"

namespace ocr::levelb {
namespace {

using geom::Interval;
using geom::Point;
using geom::Rect;

/// Two horizontal nets on nearby rows: the sensitive one routes first
/// (longest); the second would naturally hug it on the adjacent track.
/// With w24 the second keeps its distance.
struct Scenario {
  LevelBResult result;
  int sensitive_track = 0;
  tig::TrackGrid grid = tig::TrackGrid::uniform(Rect(0, 0, 800, 400),
                                                10, 10);
};

Scenario run(double w24) {
  Scenario s;
  s.sensitive_track = s.grid.nearest_h(205);

  BNet shield{1, {Point{5, 205}, Point{795, 205}}, /*sensitive=*/true};
  // Aggressor: diagonal terminals with two one-corner L candidates — one
  // runs the full length on the track adjacent to the shield (y=215), the
  // other stays far away (y=105). The §3.2 cost stage arbitrates between
  // equal-corner candidates; w24 must push it off the shield.
  BNet aggressor{2, {Point{5, 105}, Point{795, 215}}, false};

  LevelBOptions options;
  // Isolate the w24 term: the drg proximity term would also repel the
  // shield and muddy the measurement.
  options.finder.weights.w21 = 0.0;
  options.finder.weights.w22 = 0.0;
  options.finder.weights.w23 = 0.0;
  options.finder.weights.w24 = w24;
  options.ordering = NetOrdering::kAsGiven;
  LevelBRouter router(s.grid, options);
  s.result = router.route({shield, aggressor});
  return s;
}

/// Total length the aggressor runs within one pitch of the shield's row.
geom::Coord parallel_run_length(const Scenario& s) {
  geom::Coord total = 0;
  for (const auto& net : s.result.nets) {
    if (net.id != 2) continue;
    for (const auto& path : net.paths) {
      for (std::size_t leg = 0; leg + 1 < path.points.size(); ++leg) {
        const Point& p = path.points[leg];
        const Point& q = path.points[leg + 1];
        if (p.y != q.y) continue;  // horizontal legs only
        const geom::Coord dy = std::abs(p.y - 205);
        if (dy <= 12) total += std::abs(q.x - p.x);
      }
    }
  }
  return total;
}

TEST(SensitiveNets, PenaltyPushesAggressorAway) {
  // With the penalty active, the aggressor must pick the far L: at most a
  // short vertical crossing near the shield, no long parallel run.
  const Scenario with = run(50.0);
  ASSERT_EQ(with.result.failed_nets, 0);
  EXPECT_LT(parallel_run_length(with), 100);
}

TEST(SensitiveNets, PenaltyNeverIncreasesParallelRun) {
  const Scenario without = run(0.0);
  const Scenario with = run(50.0);
  ASSERT_EQ(without.result.failed_nets, 0);
  ASSERT_EQ(with.result.failed_nets, 0);
  EXPECT_LE(parallel_run_length(with), parallel_run_length(without));
}

TEST(SensitiveNets, PenaltyDoesNotBreakCompletion) {
  for (const double w24 : {0.0, 1.0, 10.0, 100.0}) {
    const Scenario s = run(w24);
    EXPECT_EQ(s.result.failed_nets, 0) << "w24=" << w24;
  }
}

TEST(SensitiveRuns, OverlapAccounting) {
  SensitiveRuns runs;
  runs.add_h(3, Interval(10, 50));
  runs.add_h(3, Interval(100, 120));
  EXPECT_EQ(runs.h_overlap(3, Interval(0, 200)), 60);
  EXPECT_EQ(runs.h_overlap(3, Interval(30, 110)), 30);
  EXPECT_EQ(runs.h_overlap(3, Interval(60, 90)), 0);
  EXPECT_EQ(runs.h_overlap(4, Interval(0, 200)), 0);
  EXPECT_TRUE(SensitiveRuns{}.empty());
  EXPECT_FALSE(runs.empty());
}

TEST(SensitiveRuns, VerticalOverlap) {
  SensitiveRuns runs;
  runs.add_v(7, Interval(0, 100));
  EXPECT_EQ(runs.v_overlap(7, Interval(50, 150)), 50);
  EXPECT_EQ(runs.v_overlap(6, Interval(50, 150)), 0);
}

}  // namespace
}  // namespace ocr::levelb

/// \file flow_engine_test.cpp
/// \brief Flow-level engine determinism: the full over-cell flow (the
/// paper's Figure-3 style macro instances) must produce identical wiring
/// and metrics for any level-B thread count, and surface the engine's
/// observability counters in FlowMetrics.

#include <gtest/gtest.h>

#include "bench_data/synthetic.hpp"
#include "flow/flow.hpp"
#include "partition/partition.hpp"
#include "report/tables.hpp"
#include "util/trace.hpp"

namespace ocr::flow {
namespace {

partition::NetPartition class_partition(const floorplan::MacroLayout& ml) {
  const auto layout =
      ml.assemble(std::vector<geom::Coord>(ml.num_channels(), 0));
  return partition::partition_by_class(layout);
}

void expect_same_metrics(const FlowMetrics& a, const FlowMetrics& b) {
  EXPECT_EQ(a.layout_area, b.layout_area);
  EXPECT_EQ(a.wire_length, b.wire_length);
  EXPECT_EQ(a.vias, b.vias);
  EXPECT_EQ(a.total_channel_tracks, b.total_channel_tracks);
  EXPECT_EQ(a.levelb_completion, b.levelb_completion);
  EXPECT_EQ(a.levelb_vertices, b.levelb_vertices);
  EXPECT_EQ(a.success, b.success);
}

TEST(FlowEngine, Ami33OverCellIsThreadCountInvariant) {
  const auto ml =
      bench_data::generate_macro_layout(bench_data::ami33_spec());
  const auto partition = class_partition(ml);

  FlowArtifacts serial_artifacts;
  const FlowMetrics serial =
      run_over_cell_flow(ml, partition, FlowOptions{}, &serial_artifacts);
  ASSERT_TRUE(serial.success);
  EXPECT_EQ(serial.levelb_threads, 1);

  for (int threads : {2, 4}) {
    FlowOptions options;
    options.levelb_threads = threads;
    FlowArtifacts artifacts;
    const FlowMetrics parallel =
        run_over_cell_flow(ml, partition, options, &artifacts);
    expect_same_metrics(serial, parallel);
    EXPECT_EQ(parallel.levelb_threads, threads);
    EXPECT_EQ(parallel.levelb_speculative_commits +
                  parallel.levelb_speculation_aborts,
              static_cast<long long>(parallel.levelb_nets));
    // The committed level-B wiring itself must be bit-identical.
    EXPECT_EQ(artifacts.levelb, serial_artifacts.levelb)
        << "threads=" << threads;
  }
}

TEST(FlowEngine, RandomInstanceMatchesAcrossThreads) {
  const auto ml =
      bench_data::generate_macro_layout(bench_data::random_spec(42, 0.4));
  const auto partition = class_partition(ml);
  const FlowMetrics serial = run_over_cell_flow(ml, partition);
  FlowOptions options;
  options.levelb_threads = 4;
  expect_same_metrics(serial, run_over_cell_flow(ml, partition, options));
}

TEST(FlowEngine, TraceFlowsThroughFlowOptions) {
  const auto ml =
      bench_data::generate_macro_layout(bench_data::random_spec(42, 0.4));
  const auto partition = class_partition(ml);
  util::TraceSink trace;
  FlowOptions options;
  options.levelb_threads = 2;
  options.levelb.trace = &trace;
  const FlowMetrics m = run_over_cell_flow(ml, partition, options);
  // One "net" event per net plus the run-level "engine" totals event
  // (parallel runs only).
  EXPECT_EQ(trace.size(), static_cast<std::size_t>(m.levelb_nets) + 1);
}

TEST(FlowEngine, EngineSummaryRendersCounters) {
  const auto ml =
      bench_data::generate_macro_layout(bench_data::random_spec(42, 0.4));
  const auto partition = class_partition(ml);
  FlowOptions options;
  options.levelb_threads = 2;
  const FlowMetrics m = run_over_cell_flow(ml, partition, options);
  const std::string table = report::render_engine_summary({m});
  EXPECT_NE(table.find("Engine summary"), std::string::npos);
  EXPECT_NE(table.find("Threads"), std::string::npos);
  EXPECT_NE(table.find("2"), std::string::npos);
}

}  // namespace
}  // namespace ocr::flow

#include <gtest/gtest.h>

#include "floorplan/macro_layout.hpp"

namespace ocr::floorplan {
namespace {

/// Two rows, two cells each; channels 0..2.
MacroLayout make_ml() {
  MacroLayout ml("fp", 500);
  ml.add_row(100);
  ml.add_row(120);
  ml.add_cell(MacroCell{"a", 150, 100, 0, 50});
  ml.add_cell(MacroCell{"b", 180, 90, 0, 260});
  ml.add_cell(MacroCell{"c", 200, 120, 1, 40});
  ml.add_cell(MacroCell{"d", 120, 110, 1, 330});
  const int n0 = ml.add_net(MacroNet{"n0", netlist::NetClass::kSignal});
  ml.add_pin(MacroPin{n0, 0, true, 30});   // cell a north
  ml.add_pin(MacroPin{n0, 2, false, 60});  // cell c south
  const int n1 = ml.add_net(MacroNet{"n1", netlist::NetClass::kCritical});
  ml.add_pin(MacroPin{n1, 1, false, 50});  // cell b south
  ml.add_pin(MacroPin{n1, -1, false, 400});  // bottom pad
  return ml;
}

TEST(MacroLayout, RowStructure) {
  const MacroLayout ml = make_ml();
  EXPECT_EQ(ml.num_rows(), 2);
  EXPECT_EQ(ml.num_channels(), 3);
  EXPECT_EQ(ml.row_cells(0), (std::vector<int>{0, 1}));
  EXPECT_EQ(ml.row_cells(1), (std::vector<int>{2, 3}));
}

TEST(MacroLayout, RowGaps) {
  const MacroLayout ml = make_ml();
  const auto gaps = ml.row_gaps(0);
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0], geom::Interval(0, 50));
  EXPECT_EQ(gaps[1], geom::Interval(200, 260));
  EXPECT_EQ(gaps[2], geom::Interval(440, 500));
}

TEST(MacroLayout, PinChannelMapping) {
  const MacroLayout ml = make_ml();
  // Pin 0: cell a (row 0) north -> channel 1.
  EXPECT_EQ(ml.pin_channel(ml.pins()[0]), 1);
  // Pin 1: cell c (row 1) south -> channel 1.
  EXPECT_EQ(ml.pin_channel(ml.pins()[1]), 1);
  // Pin 2: cell b (row 0) south -> channel 0.
  EXPECT_EQ(ml.pin_channel(ml.pins()[2]), 0);
  // Pin 3: bottom pad -> channel 0.
  EXPECT_EQ(ml.pin_channel(ml.pins()[3]), 0);
}

TEST(MacroLayout, PinX) {
  const MacroLayout ml = make_ml();
  EXPECT_EQ(ml.pin_x(ml.pins()[0]), 80);   // 50 + 30
  EXPECT_EQ(ml.pin_x(ml.pins()[3]), 400);  // pad absolute
}

TEST(MacroLayout, RowBaseAndDieHeight) {
  const MacroLayout ml = make_ml();
  const std::vector<geom::Coord> heights{10, 40, 20};
  EXPECT_EQ(ml.row_base(0, heights), 10);
  EXPECT_EQ(ml.row_base(1, heights), 10 + 100 + 40);
  EXPECT_EQ(ml.die_height(heights), 10 + 100 + 40 + 120 + 20);
}

TEST(MacroLayout, AssembleProducesValidLayout) {
  const MacroLayout ml = make_ml();
  const std::vector<geom::Coord> heights{10, 40, 20};
  const netlist::Layout layout = ml.assemble(heights);
  const auto problems = layout.validate();
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems[0]);
  EXPECT_EQ(layout.die().width(), 500);
  EXPECT_EQ(layout.die().height(), 290);
  // Pin y positions reflect channel heights: cell a north pin at
  // row0 base (10) + cell height (100).
  EXPECT_EQ(layout.pin(netlist::PinId{0}).position,
            (geom::Point{80, 110}));
}

TEST(MacroLayout, AssembleGrowsWithChannels) {
  const MacroLayout ml = make_ml();
  const auto thin = ml.assemble({0, 0, 0});
  const auto thick = ml.assemble({50, 80, 30});
  EXPECT_EQ(thick.die().height() - thin.die().height(), 160);
}

TEST(MacroLayout, ObstaclesMoveWithRows) {
  MacroLayout ml = make_ml();
  ml.add_obstacle(MacroObstacle{2, 10, 190, 40, 60, true, false, "strap"});
  const auto layout = ml.assemble({0, 0, 0});
  ASSERT_EQ(layout.obstacles().size(), 1u);
  // Cell c row base with zero channels = row 0 height = 100.
  EXPECT_EQ(layout.obstacles()[0].region,
            geom::Rect(50, 140, 230, 160));
  const auto layout2 = ml.assemble({25, 25, 0});
  EXPECT_EQ(layout2.obstacles()[0].region,
            geom::Rect(50, 190, 230, 210));
}

TEST(MacroLayout, ValidateCatchesOverlap) {
  MacroLayout ml("bad", 300);
  ml.add_row(100);
  ml.add_cell(MacroCell{"a", 150, 90, 0, 0});
  ml.add_cell(MacroCell{"b", 150, 90, 0, 100});  // overlaps a
  const int n = ml.add_net(MacroNet{"n", netlist::NetClass::kSignal});
  ml.add_pin(MacroPin{n, 0, true, 10});
  ml.add_pin(MacroPin{n, 1, true, 10});
  EXPECT_FALSE(ml.validate().empty());
}

TEST(MacroLayout, ValidateCatchesUnderdegreeNet) {
  MacroLayout ml("bad", 300);
  ml.add_row(100);
  ml.add_cell(MacroCell{"a", 150, 90, 0, 0});
  const int n = ml.add_net(MacroNet{"n", netlist::NetClass::kSignal});
  ml.add_pin(MacroPin{n, 0, true, 10});
  EXPECT_FALSE(ml.validate().empty());
}

TEST(MacroLayout, ValidGood) {
  EXPECT_TRUE(make_ml().validate().empty());
}

}  // namespace
}  // namespace ocr::floorplan

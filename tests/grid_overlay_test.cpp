/// \file grid_overlay_test.cpp
/// \brief GridOverlay equivalence: a (base snapshot + overlay) pair must
/// answer every occupancy query exactly as the mutated deep copy the
/// engine's workers used to make — fuzzed over randomized commit/brace
/// sequences, plus targeted rebase/catch-up cases mirroring the worker
/// loop.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "tig/overlay.hpp"
#include "tig/snapshot.hpp"
#include "util/rng.hpp"

namespace ocr::tig {
namespace {

using geom::Coord;
using geom::Interval;
using geom::Orientation;
using geom::Rect;

TrackGrid make_grid(Coord size) {
  return TrackGrid::uniform(Rect(0, 0, size, size), 9, 11);
}

Interval random_span(util::Rng& rng, Coord size) {
  const Coord a = rng.uniform_int(0, size - 1);
  const Coord b = rng.uniform_int(0, size - 1);
  return Interval(std::min(a, b), std::max(a, b));
}

/// Asserts every query type answers identically on the overlay and the
/// reference grid (the deep copy the overlay replaces).
void expect_equivalent(const GridOverlay& overlay, const TrackGrid& ref,
                       util::Rng& rng, Coord size) {
  for (int i = 0; i < ref.num_h(); ++i) {
    ASSERT_EQ(overlay.h_blocked(i).runs(), ref.h_blocked(i).runs())
        << "h track " << i;
    for (int probe = 0; probe < 4; ++probe) {
      const Coord x = rng.uniform_int(0, size - 1);
      EXPECT_EQ(overlay.h_free_segment(i, x), ref.h_free_segment(i, x))
          << "h track " << i << " x=" << x;
      int of = -7, ol = -7, rf = -7, rl = -7;
      const auto oseg = overlay.h_free_segment_span(i, x, &of, &ol);
      const auto rseg = ref.h_free_segment_span(i, x, &rf, &rl);
      EXPECT_EQ(oseg, rseg);
      if (oseg.has_value() && rseg.has_value()) {
        EXPECT_EQ(of, rf);
        EXPECT_EQ(ol, rl);
      }
      EXPECT_EQ(overlay.h_distance_to_blocked(i, x),
                ref.h_distance_to_blocked(i, x));
      const Interval span = random_span(rng, size);
      EXPECT_EQ(overlay.h_is_free(i, span), ref.h_is_free(i, span));
      EXPECT_EQ(overlay.h_blocked_fraction(i, span),
                ref.h_blocked_fraction(i, span));
    }
  }
  for (int j = 0; j < ref.num_v(); ++j) {
    ASSERT_EQ(overlay.v_blocked(j).runs(), ref.v_blocked(j).runs())
        << "v track " << j;
    for (int probe = 0; probe < 4; ++probe) {
      const Coord y = rng.uniform_int(0, size - 1);
      EXPECT_EQ(overlay.v_free_segment(j, y), ref.v_free_segment(j, y))
          << "v track " << j << " y=" << y;
      int of = -7, ol = -7, rf = -7, rl = -7;
      const auto oseg = overlay.v_free_segment_span(j, y, &of, &ol);
      const auto rseg = ref.v_free_segment_span(j, y, &rf, &rl);
      EXPECT_EQ(oseg, rseg);
      if (oseg.has_value() && rseg.has_value()) {
        EXPECT_EQ(of, rf);
        EXPECT_EQ(ol, rl);
      }
      EXPECT_EQ(overlay.v_distance_to_blocked(j, y),
                ref.v_distance_to_blocked(j, y));
      const Interval span = random_span(rng, size);
      EXPECT_EQ(overlay.v_is_free(j, span), ref.v_is_free(j, span));
      EXPECT_EQ(overlay.v_blocked_fraction(j, span),
                ref.v_blocked_fraction(j, span));
    }
  }
  for (int probe = 0; probe < 32; ++probe) {
    const int i = static_cast<int>(rng.uniform_int(0, ref.num_h() - 1));
    const int j = static_cast<int>(rng.uniform_int(0, ref.num_v() - 1));
    EXPECT_EQ(overlay.crossing_free(i, j), ref.crossing_free(i, j));
  }
}

TEST(GridOverlay, UntouchedOverlayMatchesBase) {
  util::Rng rng(1);
  const Coord size = 200;
  TrackGrid base = make_grid(size);
  for (int b = 0; b < 12; ++b) {
    if (rng.uniform_int(0, 1) == 0) {
      base.block_h(static_cast<int>(rng.uniform_int(0, base.num_h() - 1)),
                   random_span(rng, size));
    } else {
      base.block_v(static_cast<int>(rng.uniform_int(0, base.num_v() - 1)),
                   random_span(rng, size));
    }
  }
  base.warm_gap_cache();
  GridOverlay overlay(&base);
  EXPECT_EQ(overlay.touched_tracks(), 0u);
  expect_equivalent(overlay, base, rng, size);
}

TEST(GridOverlay, FuzzMutationSequencesMatchDeepCopy) {
  // The core identity claim: after any interleaving of blocks and
  // unblocks (commit ops and terminal braces alike), every query on
  // (immutable base + overlay) equals the same query on a deep copy that
  // applied the same ops directly.
  const Coord size = 200;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng rng(seed);
    TrackGrid base = make_grid(size);
    for (int b = 0; b < 10; ++b) {
      if (rng.uniform_int(0, 1) == 0) {
        base.block_h(static_cast<int>(rng.uniform_int(0, base.num_h() - 1)),
                     random_span(rng, size));
      } else {
        base.block_v(static_cast<int>(rng.uniform_int(0, base.num_v() - 1)),
                     random_span(rng, size));
      }
    }
    base.warm_gap_cache();

    TrackGrid copy = base;  // the worker's old per-epoch deep copy
    GridOverlay overlay(&base);
    for (int step = 0; step < 40; ++step) {
      const bool horizontal = rng.uniform_int(0, 1) == 0;
      const bool block = rng.uniform_int(0, 2) != 0;  // blocks dominate
      // Degenerate one-coordinate spans mimic terminal braces; wider
      // spans mimic committed extents.
      Interval span = random_span(rng, size);
      if (rng.uniform_int(0, 3) == 0) span = Interval(span.lo, span.lo);
      if (horizontal) {
        const int i =
            static_cast<int>(rng.uniform_int(0, base.num_h() - 1));
        if (block) {
          overlay.block_h(i, span);
          copy.block_h(i, span);
        } else {
          overlay.unblock_h(i, span);
          copy.unblock_h(i, span);
        }
      } else {
        const int j =
            static_cast<int>(rng.uniform_int(0, base.num_v() - 1));
        if (block) {
          overlay.block_v(j, span);
          copy.block_v(j, span);
        } else {
          overlay.unblock_v(j, span);
          copy.unblock_v(j, span);
        }
      }
      if (step % 8 == 7) expect_equivalent(overlay, copy, rng, size);
    }
    expect_equivalent(overlay, copy, rng, size);
    EXPECT_GT(overlay.touched_tracks(), 0u);
  }
}

TEST(GridOverlay, BraceRoundTripLeavesQueriesAtBase) {
  // unblock-then-reblock of a terminal crossing (the worker's per-net
  // brace) must restore exactly the base occupancy — the canonical
  // IntervalSet representation guarantees the round trip is lossless.
  util::Rng rng(5);
  const Coord size = 200;
  TrackGrid base = make_grid(size);
  base.block_h(3, Interval(0, size));
  base.block_v(4, Interval(0, size));
  base.warm_gap_cache();
  GridOverlay overlay(&base);

  const Coord x = base.v_x(4);
  const Coord y = base.h_y(3);
  overlay.unblock_h(3, Interval(x, x));
  overlay.unblock_v(4, Interval(y, y));
  EXPECT_TRUE(overlay.crossing_free(3, 4));
  overlay.block_h(3, Interval(x, x));
  overlay.block_v(4, Interval(y, y));
  expect_equivalent(overlay, base, rng, size);
}

TEST(GridOverlay, CommitLogCatchUpMatchesLiveGrid) {
  // The worker-loop pattern: an overlay over a stale snapshot, caught up
  // by replaying commit-log batches, must answer exactly like the live
  // grid after those applies.
  const Coord size = 240;
  for (std::uint64_t seed : {2u, 9u}) {
    util::Rng rng(seed);
    TrackGrid live = make_grid(size);
    VersionedGrid versioned(live, /*expected_commits=*/32,
                            /*snapshot_refresh_interval=*/64);
    const auto snap0 = versioned.snapshot();

    GridOverlay overlay(&snap0->grid);
    std::uint64_t applied = snap0->epoch;
    for (int batch = 0; batch < 20; ++batch) {
      std::vector<CommitOp> ops;
      const int count = static_cast<int>(rng.uniform_int(1, 3));
      for (int o = 0; o < count; ++o) {
        const bool horizontal = rng.uniform_int(0, 1) == 0;
        const int tracks = horizontal ? live.num_h() : live.num_v();
        ops.push_back(CommitOp{
            TrackRef{horizontal ? Orientation::kHorizontal
                                : Orientation::kVertical,
                     static_cast<int>(rng.uniform_int(0, tracks - 1))},
            random_span(rng, size), /*block=*/true});
      }
      versioned.apply(std::move(ops));

      while (applied < versioned.epoch()) {
        const CommitRecord* record = versioned.log().record_at(applied);
        ASSERT_NE(record, nullptr);
        for (const CommitOp& op : record->ops) {
          overlay.apply(op.track, op.span, op.block);
        }
        ++applied;
      }
      if (batch % 5 == 4) expect_equivalent(overlay, live, rng, size);
    }
    expect_equivalent(overlay, live, rng, size);
    // The whole catch-up never copied the grid beyond the one epoch-0
    // snapshot (refresh interval 64 > 20 batches).
    EXPECT_EQ(versioned.snapshot_copies(), 1u);
    EXPECT_EQ(versioned.snapshot().get(), snap0.get());
  }
}

TEST(GridOverlay, RebaseDropsDeltasInOTouched) {
  util::Rng rng(3);
  const Coord size = 200;
  TrackGrid base = make_grid(size);
  base.warm_gap_cache();
  GridOverlay overlay(&base);
  overlay.block_h(2, Interval(10, 50));
  overlay.block_v(5, Interval(20, 80));
  EXPECT_EQ(overlay.touched_tracks(), 2u);
  EXPECT_FALSE(overlay.h_is_free(2, Interval(10, 50)));

  overlay.rebase(&base);
  EXPECT_EQ(overlay.touched_tracks(), 0u);
  EXPECT_TRUE(overlay.h_is_free(2, Interval(10, 50)));
  expect_equivalent(overlay, base, rng, size);
}

TEST(GridOverlay, IncrementalSnapshotRefreshMatchesFullCopy) {
  // VersionedGrid's incremental publication: a snapshot produced by
  // patching the previous snapshot with logged batches must equal a
  // from-scratch copy of the live grid.
  const Coord size = 240;
  util::Rng rng(17);
  TrackGrid live = make_grid(size);
  VersionedGrid versioned(live, /*expected_commits=*/64,
                          /*snapshot_refresh_interval=*/4);
  auto last = versioned.snapshot();
  EXPECT_EQ(versioned.snapshot_copies(), 1u);
  for (int batch = 0; batch < 24; ++batch) {
    const bool horizontal = rng.uniform_int(0, 1) == 0;
    const int tracks = horizontal ? live.num_h() : live.num_v();
    versioned.apply({CommitOp{
        TrackRef{horizontal ? Orientation::kHorizontal
                            : Orientation::kVertical,
                 static_cast<int>(rng.uniform_int(0, tracks - 1))},
        random_span(rng, size)}});
    const auto snap = versioned.snapshot();
    // The cached snapshot lags by fewer epochs than the refresh
    // interval, and refreshed ones carry exactly the live occupancy.
    EXPECT_LT(versioned.epoch() - snap->epoch, 4u);
    if (snap != last) {
      for (int i = 0; i < live.num_h(); ++i) {
        ASSERT_EQ(snap->grid.h_blocked(i).runs(), live.h_blocked(i).runs());
      }
      for (int j = 0; j < live.num_v(); ++j) {
        ASSERT_EQ(snap->grid.v_blocked(j).runs(), live.v_blocked(j).runs());
      }
      last = snap;
    }
  }
  // 24 epochs at refresh interval 4: 1 initial + 6 refreshes, far fewer
  // than the 24 per-epoch copies the old scheme performed.
  EXPECT_EQ(versioned.snapshot_copies(), 7u);
}

}  // namespace
}  // namespace ocr::tig

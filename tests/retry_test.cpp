/// \file retry_test.cpp
/// \brief Retry-policy tests: the transient/permanent classification
/// table, deterministic seeded backoff, and executor integration — a
/// chaos-killed first attempt retries to success, exhausted retries
/// surface the final failure, and the retry schedule plus the routed
/// results reproduce exactly at 1/2/4 workers.

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "flow/run.hpp"
#include "service/executor.hpp"
#include "service/job.hpp"
#include "service/retry.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/status.hpp"

namespace ocr::service {
namespace {

RoutingJob ami33_job(const std::string& id) {
  io::JobRequest request;
  request.id = id;
  request.example = "ami33";
  auto spec = spec_from_request(request);
  EXPECT_TRUE(spec.ok()) << spec.status().to_string();
  auto job = materialize(*spec);
  EXPECT_TRUE(job.ok()) << job.status().to_string();
  return std::move(job).value();
}

JobResult failed_result(util::Status error) {
  JobResult result;
  result.id = "r";
  result.report.status = flow::RunStatus::kFailed;
  result.report.error = std::move(error);
  return result;
}

TEST(RetryClassification, FollowsTheTable) {
  using util::Status;
  EXPECT_EQ(classify_status(Status::fault_injected("chaos")),
            RetryClass::kTransient);
  EXPECT_EQ(classify_status(Status::cancelled("supervisor")),
            RetryClass::kTransient);
  EXPECT_EQ(classify_status(Status::deadline_exceeded("watchdog")),
            RetryClass::kTransient);
  EXPECT_EQ(classify_status(Status::task_failed("worker crash")),
            RetryClass::kTransient);
  // Overload (queue full at admission) is transient; a per-net routing
  // budget burning out is a property of the instance — permanent.
  Status overload = Status::budget_exhausted("queue full");
  overload.with_stage("admission");
  EXPECT_EQ(classify_status(overload), RetryClass::kTransient);
  EXPECT_EQ(classify_status(Status::budget_exhausted("net effort")),
            RetryClass::kPermanent);

  EXPECT_EQ(classify_status(Status::parse_error("bad json")),
            RetryClass::kPermanent);
  EXPECT_EQ(classify_status(Status::invalid_argument("bad knob")),
            RetryClass::kPermanent);
  EXPECT_EQ(classify_status(Status::unroutable("no path")),
            RetryClass::kPermanent);
  EXPECT_EQ(classify_status(Status::io_error("missing file")),
            RetryClass::kPermanent);
}

TEST(RetryClassification, ResultsClassifyThroughTheirFailureStatus) {
  // A successful result is never retried.
  JobResult clean;
  clean.report.status = flow::RunStatus::kClean;
  EXPECT_EQ(classify_result(clean), RetryClass::kPermanent);

  EXPECT_EQ(classify_result(failed_result(util::Status::cancelled("hung"))),
            RetryClass::kTransient);
  EXPECT_EQ(classify_result(failed_result(util::Status::parse_error("bad"))),
            RetryClass::kPermanent);

  // Admission rejections classify through reject_reason.
  JobResult rejected;
  rejected.rejected = true;
  rejected.reject_reason = util::Status::budget_exhausted("queue full");
  rejected.reject_reason.with_stage("admission");
  EXPECT_EQ(classify_result(rejected), RetryClass::kTransient);
  rejected.reject_reason = util::Status::invalid_argument("too many nets");
  EXPECT_EQ(classify_result(rejected), RetryClass::kPermanent);
}

TEST(RetryBackoff, IsAPureFunctionOfPolicyIdAndAttempt) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_ms = 10;
  policy.seed = 42;
  for (int attempt = 0; attempt < 4; ++attempt) {
    EXPECT_EQ(retry_backoff_ms(policy, "job-a", attempt),
              retry_backoff_ms(policy, "job-a", attempt));
  }
  // Different ids draw different jitter (with overwhelming probability
  // across four attempts).
  bool any_difference = false;
  for (int attempt = 0; attempt < 4; ++attempt) {
    any_difference |= retry_backoff_ms(policy, "job-a", attempt) !=
                      retry_backoff_ms(policy, "job-b", attempt);
  }
  EXPECT_TRUE(any_difference);
}

TEST(RetryBackoff, GrowsExponentiallyWithinJitterAndCaps) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.base_ms = 100;
  policy.max_ms = 1000;
  policy.jitter = 0.2;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const long long nominal =
        std::min(policy.max_ms, policy.base_ms << std::min(attempt, 30));
    const long long drawn = retry_backoff_ms(policy, "job", attempt);
    EXPECT_GE(drawn, static_cast<long long>(nominal * 0.8) - 1) << attempt;
    EXPECT_LE(drawn, static_cast<long long>(nominal * 1.2) + 1) << attempt;
  }
  // Zero jitter pins the exact exponential sequence.
  policy.jitter = 0.0;
  EXPECT_EQ(retry_backoff_ms(policy, "job", 0), 100);
  EXPECT_EQ(retry_backoff_ms(policy, "job", 1), 200);
  EXPECT_EQ(retry_backoff_ms(policy, "job", 2), 400);
  EXPECT_EQ(retry_backoff_ms(policy, "job", 3), 800);
  EXPECT_EQ(retry_backoff_ms(policy, "job", 4), 1000);  // capped
  EXPECT_EQ(retry_backoff_ms(policy, "job", 8), 1000);
}

TEST(RetryPolicy, ShouldRetryRespectsAttemptCapAndClass) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  const JobResult transient =
      failed_result(util::Status::cancelled("supervisor"));
  const JobResult permanent =
      failed_result(util::Status::parse_error("bad"));
  EXPECT_TRUE(should_retry(policy, transient, 0));
  EXPECT_TRUE(should_retry(policy, transient, 1));
  EXPECT_FALSE(should_retry(policy, transient, 2));  // third attempt done
  EXPECT_FALSE(should_retry(policy, permanent, 0));

  policy.max_attempts = 1;  // disabled
  EXPECT_FALSE(should_retry(policy, transient, 0));
}

/// Chaos integration: `service.worker.fail=@0` kills every job's first
/// attempt; with retries enabled each job must succeed on its second.
TEST(RetryExecutor, InjectedFirstAttemptFailureRetriesToSuccess) {
  auto& chaos = util::FaultRegistry::service();
  ASSERT_TRUE(chaos.configure("service.worker.fail=@0").ok());
  auto& registry = util::MetricsRegistry::global();
  const long long retries_before =
      registry.counter("service.retries").value();

  JobExecutor::Options options;
  options.workers = 2;
  options.retry.max_attempts = 3;
  options.retry.base_ms = 1;
  JobExecutor executor(options);

  std::mutex mu;
  std::vector<JobResult> results;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(executor.submit(ami33_job("retry-" + std::to_string(i)),
                                [&](JobResult r) {
                                  const std::lock_guard<std::mutex> lock(mu);
                                  results.push_back(std::move(r));
                                }));
  }
  executor.drain();
  chaos.clear();

  const std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(results.size(), 3u);
  for (const JobResult& r : results) {
    SCOPED_TRACE(r.id);
    EXPECT_EQ(r.exit_class(), 0);
    EXPECT_EQ(r.attempts, 2);  // attempt 0 killed, attempt 1 clean
  }
  EXPECT_EQ(registry.counter("service.retries").value(), retries_before + 3);
}

/// A permanently failing job burns every attempt, then surfaces the last
/// failure with the full attempt count.
TEST(RetryExecutor, ExhaustedRetriesSurfaceTheFinalFailure) {
  auto& chaos = util::FaultRegistry::service();
  ASSERT_TRUE(chaos.configure("service.worker.fail=*").ok());
  auto& registry = util::MetricsRegistry::global();
  const long long exhausted_before =
      registry.counter("service.retry_exhausted").value();

  JobExecutor::Options options;
  options.retry.max_attempts = 3;
  options.retry.base_ms = 1;
  JobExecutor executor(options);

  std::mutex mu;
  JobResult seen;
  ASSERT_TRUE(executor.submit(ami33_job("doomed"), [&](JobResult r) {
    const std::lock_guard<std::mutex> lock(mu);
    seen = std::move(r);
  }));
  executor.drain();
  chaos.clear();

  const std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(seen.exit_class(), 1);
  EXPECT_EQ(seen.attempts, 3);
  EXPECT_FALSE(seen.report.error.ok());
  EXPECT_EQ(registry.counter("service.retry_exhausted").value(),
            exhausted_before + 1);
}

/// Permanent failures never consume a retry: an unknown-example job
/// fails once even with a generous retry budget.
TEST(RetryExecutor, PermanentFailuresAreNotRetried) {
  auto& registry = util::MetricsRegistry::global();
  const long long retries_before =
      registry.counter("service.retries").value();

  JobExecutor::Options options;
  options.retry.max_attempts = 5;
  options.retry.base_ms = 1;
  JobExecutor executor(options);

  // An infeasible per-net budget under the abort policy fails
  // deterministically on every attempt — a pure function of the request.
  RoutingJob doomed = ami33_job("permanent");
  doomed.spec.fail_policy = flow::FailPolicy::kAbort;
  doomed.spec.net_effort = 1;  // nothing routes under a 1-vertex budget

  std::mutex mu;
  JobResult seen;
  ASSERT_TRUE(executor.submit(std::move(doomed), [&](JobResult r) {
    const std::lock_guard<std::mutex> lock(mu);
    seen = std::move(r);
  }));
  executor.drain();

  const std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(seen.exit_class(), 1);
  EXPECT_EQ(seen.attempts, 1);  // no retry consumed
  EXPECT_EQ(registry.counter("service.retries").value(), retries_before);
}

/// The determinism pin: the same seed and fault plan produce the same
/// retry schedule (per-job backoff sequence) and byte-identical routing
/// figures at 1, 2 and 4 workers.
TEST(RetryExecutor, ScheduleAndResultsReproduceAcrossWorkerCounts) {
  struct Observed {
    int attempts = 0;
    long long wire_length = 0;
    int vias = 0;
    std::vector<long long> backoffs;
  };

  const auto run_fleet = [](int workers) {
    auto& chaos = util::FaultRegistry::service();
    EXPECT_TRUE(chaos.configure("service.worker.fail=@0").ok());

    JobExecutor::Options options;
    options.workers = workers;
    options.admission.queue_limit = 16;
    options.retry.max_attempts = 3;
    options.retry.base_ms = 1;
    options.retry.seed = 77;

    std::map<std::string, Observed> seen;
    {
      JobExecutor executor(options);
      std::mutex mu;
      for (int i = 0; i < 6; ++i) {
        const std::string id = "det-" + std::to_string(i);
        EXPECT_TRUE(executor.submit(ami33_job(id), [&, id](JobResult r) {
          const std::lock_guard<std::mutex> lock(mu);
          seen[id].attempts = r.attempts;
          seen[id].wire_length = r.report.metrics.wire_length;
          seen[id].vias = r.report.metrics.vias;
        }));
      }
      executor.drain();
    }
    chaos.clear();

    // The schedule every failed attempt would draw is a pure function of
    // (policy, id, attempt) — record it alongside the observed results.
    for (auto& [id, observed] : seen) {
      for (int a = 0; a + 1 < observed.attempts + 1; ++a) {
        observed.backoffs.push_back(retry_backoff_ms(options.retry, id, a));
      }
    }
    return seen;
  };

  const auto baseline = run_fleet(1);
  ASSERT_EQ(baseline.size(), 6u);
  for (const auto& [id, observed] : baseline) {
    SCOPED_TRACE(id);
    EXPECT_EQ(observed.attempts, 2);
    EXPECT_GT(observed.wire_length, 0);
  }
  for (const int workers : {2, 4}) {
    SCOPED_TRACE(workers);
    const auto seen = run_fleet(workers);
    ASSERT_EQ(seen.size(), baseline.size());
    for (const auto& [id, observed] : baseline) {
      const auto it = seen.find(id);
      ASSERT_NE(it, seen.end()) << id;
      EXPECT_EQ(it->second.attempts, observed.attempts) << id;
      EXPECT_EQ(it->second.wire_length, observed.wire_length) << id;
      EXPECT_EQ(it->second.vias, observed.vias) << id;
      EXPECT_EQ(it->second.backoffs, observed.backoffs) << id;
    }
  }
}

}  // namespace
}  // namespace ocr::service

#include <gtest/gtest.h>

#include "bench_data/synthetic.hpp"
#include "flow/flow.hpp"
#include "partition/partition.hpp"

namespace ocr::flow {
namespace {

floorplan::MacroLayout small_instance() {
  return bench_data::generate_macro_layout(bench_data::random_spec(42, 0.4));
}

partition::NetPartition class_partition(const floorplan::MacroLayout& ml) {
  const auto layout =
      ml.assemble(std::vector<geom::Coord>(ml.num_channels(), 0));
  return partition::partition_by_class(layout);
}

TEST(Flow, TwoLayerBaselineCompletes) {
  const auto ml = small_instance();
  const FlowMetrics m = run_two_layer_flow(ml);
  EXPECT_TRUE(m.success) << (m.problems.empty() ? "" : m.problems[0]);
  EXPECT_GT(m.layout_area, 0);
  EXPECT_GT(m.wire_length, 0);
  EXPECT_GT(m.vias, 0);
  EXPECT_GT(m.total_channel_tracks, 0);
  EXPECT_EQ(m.levelb_nets, 0);
}

TEST(Flow, OverCellFlowCompletes) {
  const auto ml = small_instance();
  const FlowMetrics m = run_over_cell_flow(ml, class_partition(ml));
  EXPECT_TRUE(m.success) << (m.problems.empty() ? "" : m.problems[0]);
  EXPECT_GT(m.levelb_nets, 0);
  EXPECT_GE(m.levelb_completion, 0.9);
}

TEST(Flow, OverCellShrinksLayoutArea) {
  // The headline claim of the paper: moving most nets over the cells
  // shrinks the channels and hence the layout.
  const auto ml = small_instance();
  const FlowMetrics baseline = run_two_layer_flow(ml);
  const FlowMetrics proposed = run_over_cell_flow(ml, class_partition(ml));
  ASSERT_TRUE(baseline.success);
  ASSERT_TRUE(proposed.success);
  EXPECT_LT(proposed.layout_area, baseline.layout_area);
  EXPECT_LT(proposed.total_channel_tracks, baseline.total_channel_tracks);
}

TEST(Flow, FourLayerChannelBetweenBaselines) {
  const auto ml = small_instance();
  const FlowMetrics two = run_two_layer_flow(ml);
  const FlowMetrics four = run_four_layer_channel_flow(ml);
  ASSERT_TRUE(two.success);
  ASSERT_TRUE(four.success);
  // Fewer tracks than two-layer routing...
  EXPECT_LE(four.layout_area, two.layout_area);
}

TEST(Flow, FiftyPercentModelAreaBelowTwoLayer) {
  const auto ml = small_instance();
  const FlowMetrics two = run_two_layer_flow(ml);
  const FlowMetrics model = run_fifty_percent_model_flow(ml);
  ASSERT_TRUE(two.success);
  ASSERT_TRUE(model.success);
  EXPECT_LT(model.layout_area, two.layout_area);
  // The model only adjusts area; WL and vias carry over.
  EXPECT_EQ(model.wire_length, two.wire_length);
  EXPECT_EQ(model.vias, two.vias);
}

TEST(Flow, PercentReduction) {
  EXPECT_DOUBLE_EQ(percent_reduction(200.0, 150.0), 25.0);
  EXPECT_DOUBLE_EQ(percent_reduction(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(percent_reduction(0.0, 10.0), 0.0);
  EXPECT_LT(percent_reduction(100.0, 120.0), 0.0);
}

TEST(Flow, ArtifactsExposed) {
  const auto ml = small_instance();
  FlowArtifacts artifacts;
  const FlowMetrics m =
      run_over_cell_flow(ml, class_partition(ml), FlowOptions{}, &artifacts);
  ASSERT_TRUE(m.success);
  EXPECT_EQ(static_cast<int>(artifacts.channel_heights.size()),
            ml.num_channels());
  EXPECT_FALSE(artifacts.levelb.nets.empty());
  EXPECT_TRUE(artifacts.layout.validate().empty());
  // Die height consistent with the metrics.
  EXPECT_EQ(artifacts.layout.die().area(), m.layout_area);
}

TEST(Flow, AllBPartitionEliminatesChannelTracks) {
  // §5: with every net over-cell, channel track demand vanishes. The
  // paper's caveat applies — completion is only guaranteed if the level-B
  // solution space suffices — so the flow keeps a minimal channel height
  // for pin-row separation.
  const auto ml = small_instance();
  const auto layout =
      ml.assemble(std::vector<geom::Coord>(ml.num_channels(), 0));
  FlowOptions options;
  options.min_channel_height = 45;  // ~5 metal3 tracks of separation
  const FlowMetrics m =
      run_over_cell_flow(ml, partition::partition_all_b(layout), options);
  EXPECT_EQ(m.total_channel_tracks, 0);
  EXPECT_GE(m.levelb_completion, 0.9);
  // Still far smaller than the two-layer baseline.
  const FlowMetrics baseline = run_two_layer_flow(ml);
  EXPECT_LT(m.layout_area, baseline.layout_area);
}

TEST(Flow, DeterministicAcrossRuns) {
  const auto ml = small_instance();
  const FlowMetrics a = run_over_cell_flow(ml, class_partition(ml));
  const FlowMetrics b = run_over_cell_flow(ml, class_partition(ml));
  EXPECT_EQ(a.layout_area, b.layout_area);
  EXPECT_EQ(a.wire_length, b.wire_length);
  EXPECT_EQ(a.vias, b.vias);
}

}  // namespace
}  // namespace ocr::flow

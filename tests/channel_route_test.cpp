#include <gtest/gtest.h>

#include "channel/route.hpp"

namespace ocr::channel {
namespace {

// One net, top pin at column 0, bottom pin at column 3, routed by hand on
// track 1 of a 1-track channel.
ChannelProblem one_net() {
  ChannelProblem p;
  p.top = {1, 0, 0, 0};
  p.bot = {0, 0, 0, 1};
  return p;
}

ChannelRoute hand_route() {
  ChannelRoute r;
  r.success = true;
  r.num_tracks = 1;
  r.hsegs = {HSeg{1, 1, 0, 3}};
  r.vsegs = {VSeg{1, 0, 0, 1}, VSeg{1, 3, 1, 2}};
  return r;
}

TEST(Route, WireLength) {
  const ChannelRoute r = hand_route();
  EXPECT_EQ(r.wire_length(), 3 + 1 + 1);
}

TEST(Route, ViaCount) {
  const ChannelRoute r = hand_route();
  // Both vertical segments land on the track segment: 2 vias.
  EXPECT_EQ(r.via_count(), 2);
}

TEST(Route, ValidHandRoutePasses) {
  EXPECT_TRUE(validate_route(one_net(), hand_route()).empty());
}

TEST(Route, FailureIsReported) {
  ChannelRoute r;
  r.success = false;
  const auto problems = validate_route(one_net(), r);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("unsuccessful"), std::string::npos);
}

TEST(Route, DetectsUnconnectedPin) {
  ChannelRoute r = hand_route();
  r.vsegs.pop_back();  // drop the bottom pin's jog
  const auto problems = validate_route(one_net(), r);
  ASSERT_FALSE(problems.empty());
  bool mentioned = false;
  for (const auto& p : problems) {
    if (p.find("unconnected") != std::string::npos) mentioned = true;
  }
  EXPECT_TRUE(mentioned);
}

TEST(Route, DetectsTrackOverlap) {
  ChannelProblem p;
  p.top = {1, 0, 2, 0};
  p.bot = {0, 1, 0, 2};
  ChannelRoute r;
  r.success = true;
  r.num_tracks = 1;
  r.hsegs = {HSeg{1, 1, 0, 2}, HSeg{2, 1, 2, 3}};  // overlap at column 2
  r.vsegs = {VSeg{1, 0, 0, 1}, VSeg{1, 1, 1, 2}, VSeg{2, 2, 0, 1},
             VSeg{2, 3, 1, 2}};
  const auto problems = validate_route(p, r);
  bool overlap = false;
  for (const auto& msg : problems) {
    if (msg.find("overlap on track") != std::string::npos) overlap = true;
  }
  EXPECT_TRUE(overlap);
}

TEST(Route, DetectsColumnOverlap) {
  ChannelProblem p;
  p.top = {1, 2};
  p.bot = {2, 1};
  ChannelRoute r;
  r.success = true;
  r.num_tracks = 2;
  // Both nets run verticals spanning the whole column 0 -> collision.
  r.hsegs = {HSeg{1, 1, 0, 1}, HSeg{2, 2, 0, 1}};
  r.vsegs = {VSeg{1, 0, 0, 1}, VSeg{2, 0, 0, 3}, VSeg{2, 1, 0, 2},
             VSeg{1, 1, 1, 3}};
  const auto problems = validate_route(p, r);
  bool overlap = false;
  for (const auto& msg : problems) {
    if (msg.find("overlap in column") != std::string::npos) overlap = true;
  }
  EXPECT_TRUE(overlap);
}

TEST(Route, DetectsSplitNet) {
  ChannelProblem p;
  p.top = {1, 0, 0, 1};
  p.bot = {0, 0, 0, 0};
  ChannelRoute r;
  r.success = true;
  r.num_tracks = 2;
  // Two disjoint pieces, each covering one pin.
  r.hsegs = {HSeg{1, 1, 0, 1}, HSeg{1, 2, 2, 3}};
  r.vsegs = {VSeg{1, 0, 0, 1}, VSeg{1, 3, 0, 2}};
  const auto problems = validate_route(p, r);
  bool split = false;
  for (const auto& msg : problems) {
    if (msg.find("pieces") != std::string::npos) split = true;
  }
  EXPECT_TRUE(split);
}

TEST(Route, DetectsBadSpans) {
  ChannelRoute r = hand_route();
  r.hsegs[0].track = 9;  // out of range
  EXPECT_FALSE(validate_route(one_net(), r).empty());

  r = hand_route();
  r.vsegs[0].row_hi = 99;
  EXPECT_FALSE(validate_route(one_net(), r).empty());
}

TEST(Route, ExtensionColumnsAccepted) {
  ChannelProblem p;
  p.top = {1, 0};
  p.bot = {0, 1};
  ChannelRoute r;
  r.success = true;
  r.num_tracks = 1;
  r.num_columns_used = 4;  // extended past the 2 pin columns
  r.hsegs = {HSeg{1, 1, 0, 3}};
  r.vsegs = {VSeg{1, 0, 0, 1}, VSeg{1, 1, 1, 2}};
  EXPECT_TRUE(validate_route(p, r).empty());
}

TEST(Route, SameNetMayShareColumn) {
  // A dogleg: two verticals of one net in a column, touching.
  ChannelProblem p;
  p.top = {1, 1};
  p.bot = {0, 1};
  ChannelRoute r;
  r.success = true;
  r.num_tracks = 1;
  r.hsegs = {HSeg{1, 1, 0, 1}};
  r.vsegs = {VSeg{1, 0, 0, 1}, VSeg{1, 1, 0, 1}, VSeg{1, 1, 1, 2}};
  EXPECT_TRUE(validate_route(p, r).empty());
}

}  // namespace
}  // namespace ocr::channel

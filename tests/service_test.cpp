/// \file service_test.cpp
/// \brief Routing-service tests: spec validation, admission control, the
/// bounded queue's overload contract, CLI/daemon single-job parity, and
/// per-job isolation under concurrent execution (run under TSan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "flow/run.hpp"
#include "io/job_io.hpp"
#include "service/admission.hpp"
#include "service/executor.hpp"
#include "service/job.hpp"
#include "service/queue.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/status.hpp"

namespace ocr::service {
namespace {

io::JobRequest ami33_request(const std::string& id) {
  io::JobRequest request;
  request.id = id;
  request.example = "ami33";
  return request;
}

JobSpec ami33_spec(const std::string& id) {
  auto spec = spec_from_request(ami33_request(id));
  EXPECT_TRUE(spec.ok()) << spec.status().to_string();
  return *spec;
}

RoutingJob materialized(const JobSpec& spec) {
  auto job = materialize(spec);
  EXPECT_TRUE(job.ok()) << job.status().to_string();
  return std::move(job).value();
}

TEST(JobSpecValidation, AcceptsEveryLegalKnobSpelling) {
  io::JobRequest request = ami33_request("a");
  for (const char* flow : {"overcell", "2layer", "4layer", "50pct"}) {
    request.flow = flow;
    EXPECT_TRUE(spec_from_request(request).ok()) << flow;
  }
  request.flow = "overcell";
  for (const char* part : {"class", "allb", "length=2000"}) {
    request.partition = part;
    EXPECT_TRUE(spec_from_request(request).ok()) << part;
  }
  request.partition = "class";
  for (const char* policy : {"abort", "degrade", "partial"}) {
    request.fail_policy = policy;
    EXPECT_TRUE(spec_from_request(request).ok()) << policy;
  }
}

TEST(JobSpecValidation, RejectsBadKnobs) {
  io::JobRequest request = ami33_request("a");
  request.flow = "3layer";
  EXPECT_FALSE(spec_from_request(request).ok());
  request = ami33_request("a");
  request.partition = "bogus";
  EXPECT_FALSE(spec_from_request(request).ok());
  request = ami33_request("a");
  request.fail_policy = "explode";
  EXPECT_FALSE(spec_from_request(request).ok());
  request = ami33_request("a");
  request.threads = -1;
  EXPECT_FALSE(spec_from_request(request).ok());
  request = ami33_request("a");
  request.deadline_ms = -5;
  EXPECT_FALSE(spec_from_request(request).ok());
}

TEST(JobSpecValidation, RequiresExactlyOneInstanceSource) {
  io::JobRequest request;  // neither example nor input
  request.id = "a";
  EXPECT_FALSE(spec_from_request(request).ok());
  request.example = "ami33";
  request.input = "also.oclay";  // both
  EXPECT_FALSE(spec_from_request(request).ok());
}

TEST(Materialize, BuildsLayoutPartitionAndEstimate) {
  const RoutingJob job = materialized(ami33_spec("a"));
  EXPECT_GT(job.estimate.nets, 0);
  EXPECT_GT(job.estimate.pins, 0);
  EXPECT_GT(job.estimate.demand_dbu, 0);
  EXPECT_GT(job.estimate.capacity_dbu, 0);
  EXPECT_GT(job.estimate.congestion, 0.0);
  // The over-cell flow needs a partition covering every net.
  EXPECT_EQ(job.partition.set_a.size() + job.partition.set_b.size(),
            static_cast<std::size_t>(job.estimate.nets));
}

TEST(Materialize, UnknownExampleFails) {
  JobSpec spec = ami33_spec("a");
  spec.example = "nope";
  EXPECT_FALSE(materialize(spec).ok());
}

TEST(Admission, PolicyRungs) {
  RouteEstimate estimate;
  estimate.nets = 100;
  estimate.congestion = 0.5;

  AdmissionPolicy policy;  // all thresholds disabled
  EXPECT_EQ(admit(policy, estimate), AdmissionDecision::kAdmit);

  policy.max_nets = 99;
  std::string reason;
  EXPECT_EQ(admit(policy, estimate, &reason), AdmissionDecision::kReject);
  EXPECT_FALSE(reason.empty());
  policy.max_nets = 100;
  EXPECT_EQ(admit(policy, estimate), AdmissionDecision::kAdmit);

  policy.reject_congestion = 0.4;
  EXPECT_EQ(admit(policy, estimate, &reason), AdmissionDecision::kReject);
  policy.reject_congestion = 0.6;
  policy.downtier_congestion = 0.4;
  EXPECT_EQ(admit(policy, estimate), AdmissionDecision::kDowntier);
  policy.downtier_congestion = 0.6;
  EXPECT_EQ(admit(policy, estimate), AdmissionDecision::kAdmit);
}

TEST(Queue, EnforcesBoundExactly) {
  JobQueue queue(2);
  JobQueue::Entry a{materialized(ami33_spec("a")), nullptr};
  JobQueue::Entry b{materialized(ami33_spec("b")), nullptr};
  JobQueue::Entry c{materialized(ami33_spec("c")), nullptr};
  EXPECT_TRUE(queue.try_push(a));
  EXPECT_TRUE(queue.try_push(b));
  EXPECT_FALSE(queue.try_push(c));  // bound reached: reject, don't block
  EXPECT_EQ(queue.depth(), 2u);

  auto popped = queue.pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->job.spec.id, "a");  // FIFO
  EXPECT_EQ(queue.inflight(), 1u);
  EXPECT_TRUE(queue.try_push(c));  // slot freed
  queue.note_done();
  EXPECT_EQ(queue.inflight(), 0u);
}

TEST(Queue, CloseDeliversAcceptedEntriesThenStops) {
  JobQueue queue(4);
  JobQueue::Entry a{materialized(ami33_spec("a")), nullptr};
  EXPECT_TRUE(queue.try_push(a));
  queue.close();
  JobQueue::Entry b{materialized(ami33_spec("b")), nullptr};
  EXPECT_FALSE(queue.try_push(b));     // closed
  EXPECT_TRUE(queue.pop().has_value());  // accepted before close
  EXPECT_FALSE(queue.pop().has_value());  // closed and drained
}

/// The acceptance bar for the refactor: a job through the executor and
/// the same spec through flow::run (the CLI path) produce identical
/// routing results — one code path, two front ends.
TEST(Executor, InlineJobMatchesFlowRun) {
  const RoutingJob job = materialized(ami33_spec("parity"));

  JobExecutor executor(JobExecutor::Options{});
  RoutingJob copy = materialized(ami33_spec("parity"));
  const JobResult result = executor.run_inline(std::move(copy));

  const flow::RunReport direct =
      flow::run(job.layout, job.partition, job_run_options(job));

  EXPECT_EQ(result.exit_class(), direct.exit_code());
  EXPECT_EQ(result.report.status, direct.status);
  EXPECT_EQ(result.report.metrics.wire_length, direct.metrics.wire_length);
  EXPECT_EQ(result.report.metrics.vias, direct.metrics.vias);
  EXPECT_EQ(result.report.metrics.unrouted_nets,
            direct.metrics.unrouted_nets);
  // The per-job metrics scope carries this job's flow.* quantities.
  EXPECT_EQ(result.metrics.gauge_value("flow.wire_length"),
            direct.metrics.wire_length);
  EXPECT_EQ(result.metrics.counter_value("flow.runs", 0), 1);
}

TEST(Executor, CompletionCallbackRunsOnceWithResult) {
  JobExecutor executor(JobExecutor::Options{});
  std::atomic<int> calls{0};
  JobResult seen;
  std::mutex mu;
  ASSERT_TRUE(executor.submit(materialized(ami33_spec("cb")),
                              [&](JobResult r) {
                                const std::lock_guard<std::mutex> lock(mu);
                                seen = std::move(r);
                                calls.fetch_add(1);
                              }));
  executor.drain();
  EXPECT_EQ(calls.load(), 1);
  const std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(seen.id, "cb");
  EXPECT_FALSE(seen.rejected);
  EXPECT_EQ(seen.exit_class(), 0);
}

TEST(Executor, AdmissionRejectInvokesCallbackImmediately) {
  JobExecutor::Options options;
  options.admission.max_nets = 1;  // ami33 has far more nets
  JobExecutor executor(options);
  int calls = 0;
  JobResult seen;
  EXPECT_FALSE(executor.submit(materialized(ami33_spec("big")),
                               [&](JobResult r) {
                                 ++calls;
                                 seen = std::move(r);
                               }));
  EXPECT_EQ(calls, 1);  // synchronous: no queue involved
  EXPECT_TRUE(seen.rejected);
  EXPECT_EQ(seen.exit_class(), 2);
  EXPECT_EQ(std::string(seen.status_name()), "rejected");
  EXPECT_FALSE(seen.reject_reason.ok());
}

TEST(Executor, DowntierCapsNetEffortAndStillCompletes) {
  JobExecutor::Options options;
  options.admission.downtier_congestion = 1e-9;  // everything down-tiers
  options.admission.downtier_net_effort = 50;    // brutal cap
  JobExecutor executor(options);
  JobResult seen;
  std::mutex mu;
  ASSERT_TRUE(executor.submit(materialized(ami33_spec("dt")),
                              [&](JobResult r) {
                                const std::lock_guard<std::mutex> lock(mu);
                                seen = std::move(r);
                              }));
  executor.drain();
  const std::lock_guard<std::mutex> lock(mu);
  EXPECT_TRUE(seen.downtiered);
  EXPECT_FALSE(seen.rejected);
  // A 50-vertex budget cannot finish ami33 cleanly: the degradation
  // ladder must have kicked in, not a hang or a hard failure.
  EXPECT_EQ(seen.report.status, flow::RunStatus::kPartial);
  EXPECT_GT(seen.report.metrics.budget_nets, 0);
}

/// Overload contract: with a queue bound of 1 and a burst of
/// submissions, some must be rejected immediately, every submission gets
/// exactly one completion, and accepted + rejected == submitted.
TEST(Executor, OverloadRejectsBeyondQueueBoundWithoutDropping) {
  JobExecutor::Options options;
  options.workers = 1;
  options.admission.queue_limit = 1;
  JobExecutor executor(options);

  constexpr int kJobs = 12;
  std::atomic<int> completed{0};
  std::atomic<int> rejected{0};
  int accepted_count = 0;
  for (int i = 0; i < kJobs; ++i) {
    const bool accepted = executor.submit(
        materialized(ami33_spec("burst-" + std::to_string(i))),
        [&](JobResult r) {
          if (r.rejected) {
            EXPECT_EQ(r.exit_class(), 2);
            rejected.fetch_add(1);
          } else {
            completed.fetch_add(1);
          }
        });
    if (accepted) ++accepted_count;
  }
  executor.drain();
  EXPECT_EQ(completed.load(), accepted_count);
  EXPECT_EQ(completed.load() + rejected.load(), kJobs);
  // A burst of 12 against a 1-deep queue must overflow at least once
  // (each job takes ~tens of ms; submission is microseconds).
  EXPECT_GT(rejected.load(), 0);
  EXPECT_EQ(rejected.load(), kJobs - accepted_count);
}

/// Per-job isolation under concurrency: clean, deadline-doomed and
/// fault-armed jobs run together on several workers; each result must
/// carry only its own status and its own metrics scope.
TEST(Executor, ConcurrentJobsIsolateStatusAndMetrics) {
  JobExecutor::Options options;
  options.workers = 3;
  options.admission.queue_limit = 64;
  JobExecutor executor(options);

  struct Seen {
    std::mutex mu;
    std::vector<JobResult> results;
  } seen;
  const auto collect = [&seen](JobResult r) {
    const std::lock_guard<std::mutex> lock(seen.mu);
    seen.results.push_back(std::move(r));
  };

  constexpr int kRounds = 4;
  int submitted = 0;
  for (int i = 0; i < kRounds; ++i) {
    const std::string n = std::to_string(i);
    // A clean single-thread job.
    ASSERT_TRUE(executor.submit(materialized(ami33_spec("clean-" + n)),
                                collect));
    // A clean multi-thread job (engine pool inside the job).
    JobSpec threaded = ami33_spec("threaded-" + n);
    threaded.threads = 2;
    ASSERT_TRUE(executor.submit(materialized(threaded), collect));
    // A job doomed by a 1 ms deadline.
    JobSpec doomed = ami33_spec("deadline-" + n);
    doomed.deadline_ms = 1;
    ASSERT_TRUE(executor.submit(materialized(doomed), collect));
    // A fault-armed job: must run exclusively and keep its injected
    // faults out of everyone else's report.
    JobSpec faulty = ami33_spec("faulty-" + n);
    faulty.threads = 2;
    faulty.faults = "engine.committer.commit=2";
    ASSERT_TRUE(executor.submit(materialized(faulty), collect));
    submitted += 4;
  }
  executor.drain();

  const std::lock_guard<std::mutex> lock(seen.mu);
  ASSERT_EQ(seen.results.size(), static_cast<std::size_t>(submitted));
  for (const JobResult& r : seen.results) {
    SCOPED_TRACE(r.id);
    EXPECT_FALSE(r.rejected);
    EXPECT_EQ(r.metrics.counter_value("flow.runs", 0), 1);
    if (r.id.rfind("deadline-", 0) == 0) {
      EXPECT_TRUE(r.report.deadline_fired);
      EXPECT_EQ(r.report.status, flow::RunStatus::kPartial);
    } else if (r.id.rfind("faulty-", 0) == 0) {
      EXPECT_GE(r.report.metrics.faults_injected, 1);
      EXPECT_GE(r.metrics.counter_value("flow.faults_injected", 0), 1);
    } else {
      // Clean jobs: no deadline, no faults, no cancellations — nothing
      // leaked in from the doomed or faulty neighbours.
      EXPECT_FALSE(r.report.deadline_fired);
      EXPECT_EQ(r.report.status, flow::RunStatus::kClean);
      EXPECT_EQ(r.report.metrics.faults_injected, 0);
      EXPECT_EQ(r.report.metrics.cancelled_nets, 0);
      EXPECT_EQ(r.metrics.counter_value("flow.faults_injected", 0), 0);
      EXPECT_EQ(r.metrics.counter_value("flow.deadline_fired", 0), 0);
    }
  }
}

/// Deterministic results through the service: the same spec executed
/// twice on a multi-worker executor yields byte-identical routing
/// figures (the engine is deterministic at any thread count; the service
/// must not break that).
TEST(Executor, RepeatedJobsAreDeterministic) {
  JobExecutor::Options options;
  options.workers = 2;
  JobExecutor executor(options);

  std::mutex mu;
  std::vector<JobResult> results;
  for (int i = 0; i < 4; ++i) {
    JobSpec spec = ami33_spec("det-" + std::to_string(i));
    spec.threads = 2;
    ASSERT_TRUE(executor.submit(materialized(spec), [&](JobResult r) {
      const std::lock_guard<std::mutex> lock(mu);
      results.push_back(std::move(r));
    }));
  }
  executor.drain();

  const std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(results.size(), 4u);
  for (const JobResult& r : results) {
    EXPECT_EQ(r.report.metrics.wire_length,
              results.front().report.metrics.wire_length);
    EXPECT_EQ(r.report.metrics.vias, results.front().report.metrics.vias);
    EXPECT_EQ(r.exit_class(), 0);
  }
}

/// Regression for the overload-gauge audit: a burst that bounces off the
/// queue bound must leave both queue gauges at zero once the executor
/// drains — a rejected submission never touches the depth gauge, and
/// every accepted entry is matched by exactly one note_done.
TEST(Executor, GaugesReturnToZeroAfterRejectionBurst) {
  JobExecutor::Options options;
  options.workers = 1;
  options.admission.queue_limit = 1;
  {
    JobExecutor executor(options);
    std::atomic<int> calls{0};
    for (int i = 0; i < 10; ++i) {
      executor.submit(materialized(ami33_spec("gauge-" + std::to_string(i))),
                      [&](JobResult) { calls.fetch_add(1); });
    }
    executor.drain();
    EXPECT_EQ(calls.load(), 10);  // every submission answered exactly once
  }
  auto& registry = util::MetricsRegistry::global();
  EXPECT_EQ(registry.gauge("service.queue_depth").value(), 0);
  EXPECT_EQ(registry.gauge("service.inflight").value(), 0);
}

/// Hard drain: a wedged job is abandoned (no completion callback) once
/// the deadline passes, and drain_within reports it.
TEST(Executor, DrainWithinAbandonsWedgedJobs) {
  auto& chaos = util::FaultRegistry::service();
  ASSERT_TRUE(chaos.configure("service.worker.hang=1").ok());

  JobExecutor::Options options;
  options.workers = 1;
  JobExecutor executor(options);

  std::atomic<int> calls{0};
  ASSERT_TRUE(executor.submit(materialized(ami33_spec("wedged")),
                              [&](JobResult) { calls.fetch_add(1); }));
  const int abandoned = executor.drain_within(100);
  chaos.clear();
  EXPECT_EQ(abandoned, 1);
  // Abandoned jobs get no callback — in the daemon their journal records
  // have no terminal entry, which is exactly what --recover re-enqueues.
  EXPECT_EQ(calls.load(), 0);
}

/// Supervision: a worker whose progress freezes is cancelled by the
/// supervisor and, with retries enabled, the job completes on a fresh
/// attempt.
TEST(Executor, SupervisorRestartsHungWorkerAndRetryCompletes) {
  auto& chaos = util::FaultRegistry::service();
  ASSERT_TRUE(chaos.configure("service.worker.hang=1").ok());
  auto& registry = util::MetricsRegistry::global();
  const long long restarts_before =
      registry.counter("service.worker_restarts").value();

  JobExecutor::Options options;
  options.workers = 1;
  options.hang_ms = 50;
  options.supervise_poll_ms = 10;
  options.retry.max_attempts = 2;
  options.retry.base_ms = 1;
  JobExecutor executor(options);

  std::mutex mu;
  JobResult seen;
  ASSERT_TRUE(executor.submit(materialized(ami33_spec("hung")),
                              [&](JobResult r) {
                                const std::lock_guard<std::mutex> lock(mu);
                                seen = std::move(r);
                              }));
  executor.drain();
  chaos.clear();

  const std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(seen.exit_class(), 0);  // second attempt routed cleanly
  EXPECT_EQ(seen.attempts, 2);
  EXPECT_GE(registry.counter("service.worker_restarts").value(),
            restarts_before + 1);
}

TEST(Responses, ResultMapsToWireFormat) {
  JobExecutor executor(JobExecutor::Options{});
  const JobResult result =
      executor.run_inline(materialized(ami33_spec("wire")));
  const io::JobResponse response = to_response(result);
  EXPECT_EQ(response.id, "wire");
  EXPECT_EQ(response.status, "clean");
  EXPECT_EQ(response.exit_class, 0);
  EXPECT_GT(response.wire_length, 0);
  EXPECT_GT(response.vias, 0);
  EXPECT_TRUE(response.error.empty());

  // And the rendered line survives a parse round-trip.
  const auto parsed =
      io::parse_job_response(io::render_job_response(response));
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->wire_length, response.wire_length);
}

}  // namespace
}  // namespace ocr::service

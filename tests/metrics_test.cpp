#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace ocr::util {
namespace {

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(Gauge, LastWriteWins) {
  Gauge g;
  g.set(7);
  g.set(-3);
  EXPECT_EQ(g.value(), -3);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  // Bucket i counts bounds[i-1] < v <= bounds[i]; the last bucket is the
  // implicit overflow (> bounds.back()).
  Histogram h({10, 20, 40});
  h.observe(-5);  // <= 10
  h.observe(10);  // <= 10 (boundary lands in its own bucket)
  h.observe(11);  // (10, 20]
  h.observe(20);  // (10, 20]
  h.observe(21);  // (20, 40]
  h.observe(40);  // (20, 40]
  h.observe(41);  // overflow
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.bucket_count(1), 2);
  EXPECT_EQ(h.bucket_count(2), 2);
  EXPECT_EQ(h.bucket_count(3), 1);
  EXPECT_EQ(h.count(), 7);
  EXPECT_EQ(h.sum(), -5 + 10 + 11 + 20 + 21 + 40 + 41);
}

TEST(Histogram, ResetKeepsBounds) {
  Histogram h({1, 2});
  h.observe(1);
  h.observe(100);
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.bucket_count(0), 0);
  EXPECT_EQ(h.bucket_count(2), 0);
  EXPECT_EQ(h.bounds(), (std::vector<long long>{1, 2}));
}

TEST(MetricsRegistry, SameNameReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3);

  Histogram& h1 = reg.histogram("h", {1, 2, 3});
  Histogram& h2 = reg.histogram("h", {9});  // bounds ignored on re-lookup
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 3u);

  // Kinds have separate namespaces: a gauge "x" is a new instrument.
  Gauge& g = reg.gauge("x");
  g.set(5);
  EXPECT_EQ(a.value(), 3);
}

TEST(MetricsRegistry, SnapshotSortsAndCopies) {
  MetricsRegistry reg;
  reg.counter("b").add(2);
  reg.counter("a").add(1);
  reg.gauge("g").set(9);
  reg.histogram("h", {5}).observe(3);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a");
  EXPECT_EQ(snap.counters[1].first, "b");
  EXPECT_EQ(snap.counter_value("b"), 2);
  EXPECT_EQ(snap.counter_value("missing", -7), -7);
  EXPECT_EQ(snap.gauge_value("g"), 9);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].counts.size(), 2u);

  // The snapshot is detached: later updates do not show up in it.
  reg.counter("a").add(100);
  EXPECT_EQ(snap.counter_value("a"), 1);
}

TEST(MetricsRegistry, SnapshotJsonShape) {
  MetricsRegistry reg;
  reg.counter("runs").add(1);
  reg.gauge("width").set(10);
  reg.histogram("lat", {1, 2}).observe(2);
  const std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"runs\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"width\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"bounds\": [1,2]"), std::string::npos);
  EXPECT_NE(json.find("\"counts\": [0,1,0]"), std::string::npos);
}

TEST(MetricsRegistry, ResetZeroesButKeepsReferencesValid) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Histogram& h = reg.histogram("h", {10});
  c.add(5);
  h.observe(3);
  reg.reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(h.count(), 0);
  c.add(1);  // the old reference still points at the live instrument
  EXPECT_EQ(reg.snapshot().counter_value("c"), 1);
}

// Eight threads hammer one counter, one gauge and one histogram through
// the registry concurrently; totals must be exact (run under TSan in CI).
TEST(MetricsRegistry, ConcurrentUpdatesAreExact) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      // Resolve through the registry inside the loop on purpose: the
      // name lookup itself must also be thread-safe.
      Counter& c = reg.counter("shared.counter");
      Histogram& h = reg.histogram("shared.hist", {100, 1000});
      for (int i = 0; i < kIters; ++i) {
        c.add();
        reg.gauge("shared.gauge").set(t);
        h.observe(i);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("shared.counter"),
            static_cast<long long>(kThreads) * kIters);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count,
            static_cast<long long>(kThreads) * kIters);
  // Every thread observed 0..9999: 101 values <= 100 each.
  EXPECT_EQ(snap.histograms[0].counts[0], kThreads * 101LL);
  const long long g = snap.gauge_value("shared.gauge");
  EXPECT_GE(g, 0);
  EXPECT_LT(g, kThreads);
}

TEST(MetricsRegistry, GlobalIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

}  // namespace
}  // namespace ocr::util

/// \file param_sweeps_test.cpp
/// \brief Parameterized property sweeps (TEST_P) across seeds and sizes:
/// every router invariant that must hold for *any* instance, checked on
/// families of generated instances.

#include <gtest/gtest.h>

#include <map>

#include "bench_data/synthetic.hpp"
#include "channel/greedy.hpp"
#include "channel/left_edge.hpp"
#include "channel_test_util.hpp"
#include "flow/flow.hpp"
#include "levelb/router.hpp"
#include "maze/lee.hpp"
#include "partition/partition.hpp"
#include "steiner/exact.hpp"
#include "steiner/rmst.hpp"
#include "steiner/rst.hpp"
#include "util/rng.hpp"

namespace ocr {
namespace {

// ---------------------------------------------------------------------
// Channel routers: any random channel the greedy router accepts must
// validate, use >= density tracks, and cover every pin.
// ---------------------------------------------------------------------

class ChannelSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChannelSeedSweep, GreedyRoutesAndValidates) {
  util::Rng rng(GetParam());
  const auto problem = channel::testing::random_problem(
      rng, static_cast<int>(rng.uniform_int(8, 60)),
      static_cast<int>(rng.uniform_int(2, 16)),
      static_cast<int>(rng.uniform_int(2, 6)));
  const auto route = channel::route_greedy(problem);
  ASSERT_TRUE(route.success) << route.failure_reason;
  const auto problems = channel::validate_route(problem, route);
  ASSERT_TRUE(problems.empty()) << problems.front();
  EXPECT_GE(route.num_tracks, channel::channel_density(problem));
}

TEST_P(ChannelSeedSweep, LeftEdgeValidatesWhenItSucceeds) {
  util::Rng rng(GetParam() ^ 0xABCDEF);
  const auto problem = channel::testing::random_problem(
      rng, static_cast<int>(rng.uniform_int(8, 60)),
      static_cast<int>(rng.uniform_int(2, 16)));
  const auto route = channel::route_left_edge(problem);
  if (!route.success) GTEST_SKIP() << "irreducible cycle";
  const auto problems = channel::validate_route(problem, route);
  ASSERT_TRUE(problems.empty()) << problems.front();
}

TEST_P(ChannelSeedSweep, GreedyWireLengthBounded) {
  // Sanity bound: total wiring cannot exceed the full channel area.
  util::Rng rng(GetParam() ^ 0x5EED);
  const auto problem = channel::testing::random_problem(rng, 40, 10);
  const auto route = channel::route_greedy(problem);
  ASSERT_TRUE(route.success);
  const long long columns =
      std::max(route.num_columns_used, problem.num_columns());
  const long long area = columns * (route.num_tracks + 2);
  EXPECT_LE(route.wire_length(), 2 * area);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelSeedSweep,
                         ::testing::Range<std::uint64_t>(1, 26));

// ---------------------------------------------------------------------
// Level-B router: for any instance, committed wiring of different nets
// never overlaps on a track, and every complete net's paths connect its
// snapped terminals.
// ---------------------------------------------------------------------

class LevelBSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LevelBSeedSweep, InvariantsHold) {
  util::Rng rng(GetParam());
  const geom::Coord size = rng.uniform_int(300, 900);
  auto grid =
      tig::TrackGrid::uniform(geom::Rect(0, 0, size, size), 9, 11);
  // Some obstacles.
  for (int k = 0; k < 4; ++k) {
    const geom::Coord x = rng.uniform_int(0, size - 80);
    const geom::Coord y = rng.uniform_int(0, size - 80);
    const geom::Rect r(x, y, x + rng.uniform_int(20, 70),
                       y + rng.uniform_int(20, 70));
    grid.block_region_h(r);
    if (rng.chance(0.5)) grid.block_region_v(r);
  }
  std::vector<levelb::BNet> nets;
  const int num_nets = static_cast<int>(rng.uniform_int(5, 30));
  for (int n = 0; n < num_nets; ++n) {
    levelb::BNet net{n, {}};
    const int degree = static_cast<int>(rng.uniform_int(2, 5));
    for (int t = 0; t < degree; ++t) {
      net.terminals.push_back(geom::Point{rng.uniform_int(0, size - 1),
                                          rng.uniform_int(0, size - 1)});
    }
    nets.push_back(std::move(net));
  }
  levelb::LevelBRouter router(grid);
  const auto result = router.route(nets);

  // 1. Cross-net track overlap is forbidden.
  struct TrackLeg {
    int net;
    geom::Interval span;
  };
  std::map<std::pair<int, int>, std::vector<TrackLeg>> by_track;
  for (const auto& net : result.nets) {
    for (const auto& path : net.paths) {
      for (std::size_t leg = 0; leg + 1 < path.points.size(); ++leg) {
        const auto& p = path.points[leg];
        const auto& q = path.points[leg + 1];
        const auto& t = path.tracks[leg];
        const bool horizontal =
            t.orient == geom::Orientation::kHorizontal;
        by_track[{horizontal ? 0 : 1, t.index}].push_back(TrackLeg{
            net.id,
            horizontal
                ? geom::Interval(std::min(p.x, q.x), std::max(p.x, q.x))
                : geom::Interval(std::min(p.y, q.y),
                                 std::max(p.y, q.y))});
      }
    }
  }
  for (const auto& [track, legs] : by_track) {
    for (std::size_t i = 0; i < legs.size(); ++i) {
      for (std::size_t j = i + 1; j < legs.size(); ++j) {
        if (legs[i].net == legs[j].net) continue;
        ASSERT_FALSE(legs[i].span.overlaps(legs[j].span))
            << "nets " << legs[i].net << "/" << legs[j].net
            << " overlap on a track";
      }
    }
  }

  // 2. Every path is rectilinear and rides real tracks.
  for (const auto& net : result.nets) {
    for (const auto& path : net.paths) {
      ASSERT_FALSE(path.empty());
      const auto problems = levelb::validate_path(
          grid, path, path.points.front(), path.points.back());
      ASSERT_TRUE(problems.empty()) << problems.front();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LevelBSeedSweep,
                         ::testing::Range<std::uint64_t>(100, 118));

// ---------------------------------------------------------------------
// Steiner heuristics: MST >= modified-Prim RST >= exact, across sizes.
// ---------------------------------------------------------------------

class SteinerSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(SteinerSizeSweep, LengthOrderingAcrossSizes) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<geom::Point> pts;
    for (int i = 0; i < GetParam(); ++i) {
      pts.push_back(
          geom::Point{rng.uniform_int(0, 200), rng.uniform_int(0, 200)});
    }
    const auto mst = steiner::rectilinear_mst(pts);
    const auto rst = steiner::modified_prim_rst(pts);
    ASSERT_TRUE(steiner::validate_topology(rst).empty());
    EXPECT_LE(rst.length, mst.length);
    if (GetParam() <= steiner::kMaxExactTerminals) {
      EXPECT_GE(rst.length, steiner::exact_rsmt_length(pts));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SteinerSizeSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 10, 20, 50));

// ---------------------------------------------------------------------
// Flows: the headline area claim must hold across generated instances.
// ---------------------------------------------------------------------

class FlowSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowSeedSweep, OverCellNeverLargerThanBaseline) {
  const auto ml = bench_data::generate_macro_layout(
      bench_data::random_spec(GetParam(), 0.5));
  const auto layout = ml.assemble(
      std::vector<geom::Coord>(static_cast<std::size_t>(ml.num_channels()),
                               0));
  const auto partition = partition::partition_by_class(layout);
  const auto baseline = flow::run_two_layer_flow(ml);
  const auto proposed = flow::run_over_cell_flow(ml, partition);
  ASSERT_TRUE(baseline.success)
      << (baseline.problems.empty() ? "" : baseline.problems[0]);
  EXPECT_LE(proposed.layout_area, baseline.layout_area);
  EXPECT_GE(proposed.levelb_completion, 0.9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowSeedSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---------------------------------------------------------------------
// MBFS vs Lee agreement across seeds (reachability oracle).
// ---------------------------------------------------------------------

class MbfsLeeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MbfsLeeSweep, ReachabilityAgreesWithLee) {
  util::Rng rng(GetParam());
  auto grid = tig::TrackGrid::uniform(geom::Rect(0, 0, 400, 400), 10, 10);
  for (int k = 0; k < 10; ++k) {
    const geom::Coord x = rng.uniform_int(0, 340);
    const geom::Coord y = rng.uniform_int(0, 340);
    const geom::Rect r(x, y, x + rng.uniform_int(10, 60),
                       y + rng.uniform_int(10, 60));
    grid.block_region_h(r);
    grid.block_region_v(r);
  }
  const levelb::PathFinder finder(grid);
  const auto ctx = levelb::make_cost_context(grid, nullptr);
  for (int trial = 0; trial < 10; ++trial) {
    const auto a = grid.crossing(
        static_cast<int>(rng.uniform_int(0, grid.num_h() - 1)),
        static_cast<int>(rng.uniform_int(0, grid.num_v() - 1)));
    const auto b = grid.crossing(
        static_cast<int>(rng.uniform_int(0, grid.num_h() - 1)),
        static_cast<int>(rng.uniform_int(0, grid.num_v() - 1)));
    if (a == b) continue;
    const bool lee = maze::lee_connect(grid, a, b).found;
    const bool mbfs = finder.connect(a, b, ctx).found;
    EXPECT_EQ(lee, mbfs) << "a=" << a.x << "," << a.y << " b=" << b.x
                         << "," << b.y;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MbfsLeeSweep,
                         ::testing::Range<std::uint64_t>(500, 512));

}  // namespace
}  // namespace ocr

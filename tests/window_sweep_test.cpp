/// \file window_sweep_test.cpp
/// \brief TEST_P sweeps over the MBFS search-window margin (§3.1: "the
/// solution space for each MBFS is defined by the locations of the two
/// net terminals within a rectangular region").

#include <gtest/gtest.h>

#include "levelb/path_finder.hpp"
#include "maze/lee.hpp"
#include "util/rng.hpp"

namespace ocr::levelb {
namespace {

using geom::Point;
using geom::Rect;

class WindowMarginSweep : public ::testing::TestWithParam<int> {};

/// Whatever the initial margin, the full-grid fallback guarantees the
/// same reachability verdict as an exhaustive search.
TEST_P(WindowMarginSweep, ReachabilityIndependentOfMargin) {
  util::Rng rng(808);
  auto grid = tig::TrackGrid::uniform(Rect(0, 0, 400, 400), 10, 10);
  for (int k = 0; k < 10; ++k) {
    const geom::Coord x = rng.uniform_int(0, 340);
    const geom::Coord y = rng.uniform_int(0, 340);
    const Rect r(x, y, x + rng.uniform_int(10, 60),
                 y + rng.uniform_int(10, 60));
    grid.block_region_h(r);
    grid.block_region_v(r);
  }
  PathFinder::Options options;
  options.window_margin = GetParam();
  const PathFinder finder(grid, options);
  const auto ctx = make_cost_context(grid, nullptr);
  for (int trial = 0; trial < 15; ++trial) {
    const Point a = grid.crossing(
        static_cast<int>(rng.uniform_int(0, grid.num_h() - 1)),
        static_cast<int>(rng.uniform_int(0, grid.num_v() - 1)));
    const Point b = grid.crossing(
        static_cast<int>(rng.uniform_int(0, grid.num_h() - 1)),
        static_cast<int>(rng.uniform_int(0, grid.num_v() - 1)));
    if (a == b) continue;
    const auto mbfs = finder.connect(a, b, ctx);
    const auto lee = maze::lee_connect(grid, a, b);
    EXPECT_EQ(mbfs.found, lee.found)
        << "margin " << GetParam() << " trial " << trial;
    if (mbfs.found) {
      const auto problems = validate_path(grid, mbfs.path, a, b);
      EXPECT_TRUE(problems.empty()) << problems.front();
    }
  }
}

/// Wider initial windows can only examine more vertices, never fewer
/// completions.
TEST_P(WindowMarginSweep, PathQualityStableOnOpenGrid) {
  const auto grid = tig::TrackGrid::uniform(Rect(0, 0, 500, 500), 10, 10);
  PathFinder::Options options;
  options.window_margin = GetParam();
  const PathFinder finder(grid, options);
  const auto ctx = make_cost_context(grid, nullptr);
  util::Rng rng(909);
  for (int trial = 0; trial < 15; ++trial) {
    const Point a = grid.crossing(
        static_cast<int>(rng.uniform_int(0, grid.num_h() - 1)),
        static_cast<int>(rng.uniform_int(0, grid.num_v() - 1)));
    const Point b = grid.crossing(
        static_cast<int>(rng.uniform_int(0, grid.num_h() - 1)),
        static_cast<int>(rng.uniform_int(0, grid.num_v() - 1)));
    if (a == b) continue;
    const auto r = finder.connect(a, b, ctx);
    ASSERT_TRUE(r.found);
    // Open grid: always Manhattan length, at most one corner.
    EXPECT_EQ(r.path.length(), geom::manhattan(a, b));
    EXPECT_LE(r.corners, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Margins, WindowMarginSweep,
                         ::testing::Values(0, 1, 2, 3, 5, 10, 50));

}  // namespace
}  // namespace ocr::levelb

#include <gtest/gtest.h>

#include "levelb/path.hpp"
#include "maze/hightower.hpp"
#include "maze/lee.hpp"
#include "util/rng.hpp"

namespace ocr::maze {
namespace {

using geom::Interval;
using geom::Point;
using geom::Rect;

tig::TrackGrid open_grid(geom::Coord size = 200) {
  return tig::TrackGrid::uniform(Rect(0, 0, size, size), 10, 10);
}

TEST(Hightower, StraightConnection) {
  const auto grid = open_grid();
  const auto r = hightower_connect(grid, Point{5, 25}, Point{175, 25});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.path.length(), 170);
  EXPECT_EQ(r.path.corners(), 0);
}

TEST(Hightower, LShape) {
  const auto grid = open_grid();
  const auto r = hightower_connect(grid, Point{5, 5}, Point{175, 175});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.path.length(), 340);
  EXPECT_LE(r.path.corners(), 2);
  EXPECT_TRUE(
      levelb::validate_path(grid, r.path, Point{5, 5}, Point{175, 175})
          .empty());
}

TEST(Hightower, IdenticalEndpoints) {
  const auto grid = open_grid();
  const auto r = hightower_connect(grid, Point{5, 5}, Point{5, 5});
  EXPECT_TRUE(r.found);
  EXPECT_TRUE(r.path.empty());
}

TEST(Hightower, DetoursAroundObstacle) {
  auto grid = open_grid();
  const Rect wall(90, 0, 110, 160);
  grid.block_region_h(wall);
  grid.block_region_v(wall);
  const auto r = hightower_connect(grid, Point{5, 45}, Point{195, 45});
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(
      levelb::validate_path(grid, r.path, Point{5, 45}, Point{195, 45})
          .empty());
}

TEST(Hightower, ReportsUnreachable) {
  auto grid = open_grid();
  const Rect wall(90, 0, 110, 200);
  grid.block_region_h(wall);
  grid.block_region_v(wall);
  const auto r = hightower_connect(grid, Point{5, 45}, Point{195, 45});
  EXPECT_FALSE(r.found);
}

TEST(Hightower, ExpandsFarFewerProbesThanLeeCells) {
  const auto grid = open_grid(1000);
  const Point a{5, 5};
  const Point b{995, 995};
  const auto ht = hightower_connect(grid, a, b);
  const auto lee = lee_connect(grid, a, b);
  ASSERT_TRUE(ht.found);
  ASSERT_TRUE(lee.found);
  EXPECT_LT(ht.probes_expanded, lee.cells_expanded / 10);
}

TEST(HightowerProperty, ValidPathsAndBoundedMeander) {
  util::Rng rng(606);
  int found = 0;
  long long ht_total = 0;
  long long lee_total = 0;
  for (int trial = 0; trial < 30; ++trial) {
    auto grid = open_grid(300);
    for (int k = 0; k < 6; ++k) {
      const geom::Coord x = rng.uniform_int(0, 250);
      const geom::Coord y = rng.uniform_int(0, 250);
      const Rect r(x, y, x + rng.uniform_int(10, 40),
                   y + rng.uniform_int(10, 40));
      grid.block_region_h(r);
      grid.block_region_v(r);
    }
    const Point a = grid.crossing(
        static_cast<int>(rng.uniform_int(0, grid.num_h() - 1)),
        static_cast<int>(rng.uniform_int(0, grid.num_v() - 1)));
    const Point b = grid.crossing(
        static_cast<int>(rng.uniform_int(0, grid.num_h() - 1)),
        static_cast<int>(rng.uniform_int(0, grid.num_v() - 1)));
    if (a == b) continue;
    const auto ht = hightower_connect(grid, a, b);
    if (!ht.found) continue;  // line search is incomplete; that's expected
    ++found;
    const auto problems = levelb::validate_path(grid, ht.path, a, b);
    ASSERT_TRUE(problems.empty())
        << "trial " << trial << ": " << problems.front();
    const auto lee = lee_connect(grid, a, b);
    ASSERT_TRUE(lee.found);  // anything Hightower finds, Lee must too
    ht_total += ht.path.length();
    lee_total += lee.path.length();
    // Individual probes can meander badly (line search makes no length
    // guarantee), but never absurdly: cap at one grid perimeter extra.
    EXPECT_LE(ht.path.length(), lee.path.length() + 4 * 300)
        << "trial " << trial;
    // Each leg rides free track extents.
    for (std::size_t leg = 0; leg + 1 < ht.path.points.size(); ++leg) {
      const Point& p = ht.path.points[leg];
      const Point& q = ht.path.points[leg + 1];
      const auto& t = ht.path.tracks[leg];
      if (t.orient == geom::Orientation::kHorizontal) {
        ASSERT_TRUE(grid.h_is_free(
            t.index, Interval(std::min(p.x, q.x), std::max(p.x, q.x))));
      } else {
        ASSERT_TRUE(grid.v_is_free(
            t.index, Interval(std::min(p.y, q.y), std::max(p.y, q.y))));
      }
    }
  }
  EXPECT_GT(found, 20);  // mostly complete on lightly blocked grids
  // In aggregate, the meander overhead stays moderate.
  EXPECT_LE(ht_total, 2 * lee_total);
}

}  // namespace
}  // namespace ocr::maze

#include <gtest/gtest.h>

#include "geom/layers.hpp"
#include "geom/point.hpp"
#include "geom/rect.hpp"

namespace ocr::geom {
namespace {

TEST(Point, Manhattan) {
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan({3, 4}, {0, 0}), 7);
  EXPECT_EQ(manhattan({-2, 5}, {2, -5}), 14);
  EXPECT_EQ(manhattan({1, 1}, {1, 1}), 0);
}

TEST(Point, OrientationHelpers) {
  EXPECT_EQ(perpendicular(Orientation::kHorizontal), Orientation::kVertical);
  EXPECT_EQ(perpendicular(Orientation::kVertical), Orientation::kHorizontal);
  EXPECT_EQ(orientation_tag(Orientation::kHorizontal), 'H');
  EXPECT_EQ(orientation_tag(Orientation::kVertical), 'V');
}

TEST(Interval, BasicQueries) {
  const Interval iv(2, 8);
  EXPECT_EQ(iv.length(), 6);
  EXPECT_TRUE(iv.contains(2));
  EXPECT_TRUE(iv.contains(8));
  EXPECT_FALSE(iv.contains(9));
  EXPECT_TRUE(iv.contains(Interval(3, 5)));
  EXPECT_FALSE(iv.contains(Interval(3, 9)));
}

TEST(Interval, Overlaps) {
  EXPECT_TRUE(Interval(0, 5).overlaps(Interval(5, 9)));  // closed: touch
  EXPECT_FALSE(Interval(0, 5).overlaps(Interval(6, 9)));
  EXPECT_TRUE(Interval(0, 9).overlaps(Interval(3, 4)));
}

TEST(Interval, Hull) {
  EXPECT_EQ(Interval(0, 2).hull(Interval(5, 7)), Interval(0, 7));
}

TEST(Rect, Accessors) {
  const Rect r(1, 2, 11, 22);
  EXPECT_EQ(r.width(), 10);
  EXPECT_EQ(r.height(), 20);
  EXPECT_EQ(r.area(), 200);
  EXPECT_EQ(r.center(), (Point{6, 12}));
  EXPECT_EQ(r.x_span(), Interval(1, 11));
  EXPECT_EQ(r.y_span(), Interval(2, 22));
}

TEST(Rect, ContainsAndOverlap) {
  const Rect r(0, 0, 10, 10);
  EXPECT_TRUE(r.contains(Point{0, 10}));
  EXPECT_FALSE(r.contains(Point{11, 5}));
  EXPECT_TRUE(r.contains(Rect(2, 2, 8, 8)));
  EXPECT_TRUE(r.overlaps(Rect(10, 10, 20, 20)));          // closed touch
  EXPECT_FALSE(r.interior_overlaps(Rect(10, 10, 20, 20))); // open interiors
  EXPECT_TRUE(r.interior_overlaps(Rect(9, 9, 20, 20)));
}

TEST(Rect, FromCornersNormalizes) {
  EXPECT_EQ(Rect::from_corners({5, 1}, {2, 9}), Rect(2, 1, 5, 9));
}

TEST(Rect, InflatedGrowsAllSides) {
  EXPECT_EQ(Rect(2, 2, 4, 4).inflated(2), Rect(0, 0, 6, 6));
}

TEST(Rect, BoundingBox) {
  const std::vector<Point> pts{{3, 7}, {-1, 2}, {5, 5}};
  EXPECT_EQ(bounding_box(pts), Rect(-1, 2, 5, 7));
}

TEST(Layers, NamesAndIndices) {
  EXPECT_EQ(layer_name(Layer::kMetal1), "metal1");
  EXPECT_EQ(layer_name(Layer::kMetal4), "metal4");
  EXPECT_EQ(layer_index(Layer::kMetal3), 2);
}

TEST(Layers, DefaultRulesAreValidAndMonotone) {
  const DesignRules rules;
  EXPECT_TRUE(rules.valid());
  // The paper's premise: upper layers have coarser pitch.
  EXPECT_GE(rules.rule(Layer::kMetal3).pitch(),
            rules.rule(Layer::kMetal1).pitch());
  EXPECT_GE(rules.rule(Layer::kMetal4).pitch(),
            rules.rule(Layer::kMetal3).pitch());
}

TEST(Layers, ChannelPitchTakesCoarserLayer) {
  const DesignRules rules;
  EXPECT_EQ(rules.channel_pitch(Layer::kMetal1, Layer::kMetal2),
            rules.rule(Layer::kMetal2).pitch());
  EXPECT_EQ(rules.channel_pitch(Layer::kMetal3, Layer::kMetal4),
            rules.rule(Layer::kMetal4).pitch());
}

TEST(Layers, InvalidRulesDetected) {
  DesignRules rules;
  rules.layers[0].line_width = 0;
  EXPECT_FALSE(rules.valid());
}

}  // namespace
}  // namespace ocr::geom

/// \file thread_pool_test.cpp
/// \brief util::ThreadPool unit tests.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "util/thread_pool.hpp"

namespace ocr::util {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleBlocksUntilTasksFinish) {
  ThreadPool pool(2);
  std::atomic<bool> done{false};
  pool.submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    done.store(true);
  });
  pool.wait_idle();
  EXPECT_TRUE(done.load());
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, NonPositiveThreadCountUsesHardware) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), ThreadPool::hardware_threads());
}

// Regression: an exception escaping a task used to propagate out of
// worker_loop and terminate the process during join. It must be caught
// at the task boundary and surfaced as a Status instead.
TEST(ThreadPool, ThrowingTaskDoesNotTerminateAndSurfacesStatus) {
  ThreadPool pool(2);
  std::atomic<int> survivors{0};
  pool.submit([] { throw std::runtime_error("task exploded"); });
  for (int i = 0; i < 10; ++i) {
    pool.submit([&survivors] { survivors.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(survivors.load(), 10);  // the pool kept serving the queue

  const Status first = pool.first_failure();
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.kind(), StatusKind::kTaskFailed);
  EXPECT_NE(first.message().find("task exploded"), std::string::npos);
  EXPECT_EQ(first.stage(), "thread-pool");
  EXPECT_EQ(pool.task_failures().size(), 1u);
}

TEST(ThreadPool, ThrowingTaskDuringDestructorJoinIsSafe) {
  // The queued throwing tasks drain inside ~ThreadPool; reaching the
  // EXPECT below at all is the regression assertion.
  {
    ThreadPool pool(1);
    for (int i = 0; i < 5; ++i) {
      pool.submit([] { throw std::runtime_error("late failure"); });
    }
  }
  SUCCEED();
}

TEST(ThreadPool, NonStandardExceptionIsCapturedToo) {
  ThreadPool pool(1);
  pool.submit([] { throw 42; });  // NOLINT: deliberately not std::exception
  pool.wait_idle();
  const Status first = pool.first_failure();
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.kind(), StatusKind::kTaskFailed);
}

TEST(ThreadPool, NoFailuresReportsOk) {
  ThreadPool pool(2);
  pool.submit([] {});
  pool.wait_idle();
  EXPECT_TRUE(pool.first_failure().ok());
  EXPECT_TRUE(pool.task_failures().empty());
}

TEST(ThreadPool, QueueDepthAndActiveAccessors) {
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  pool.submit([&release] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  pool.submit([] {});  // parked behind the blocker on the only worker
  // Wait until the blocker is running; the second task must be queued.
  while (pool.active() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool.active(), 1);
  EXPECT_EQ(pool.queue_depth(), 1u);
  release.store(true);
  pool.wait_idle();
  EXPECT_EQ(pool.active(), 0);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPool, MetricsPrefixPublishesGauges) {
  MetricsRegistry& registry = MetricsRegistry::global();
  {
    ThreadPool pool(2, "test.pool");
    for (int i = 0; i < 8; ++i) pool.submit([] {});
    pool.wait_idle();
  }
  const MetricsSnapshot snapshot = registry.snapshot();
  // Idle pool: both gauges exist and read zero.
  EXPECT_EQ(snapshot.gauge_value("test.pool.queue_depth"), 0);
  EXPECT_EQ(snapshot.gauge_value("test.pool.active_workers"), 0);
}

}  // namespace
}  // namespace ocr::util

/// \file thread_pool_test.cpp
/// \brief util::ThreadPool unit tests.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "util/thread_pool.hpp"

namespace ocr::util {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleBlocksUntilTasksFinish) {
  ThreadPool pool(2);
  std::atomic<bool> done{false};
  pool.submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    done.store(true);
  });
  pool.wait_idle();
  EXPECT_TRUE(done.load());
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, NonPositiveThreadCountUsesHardware) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), ThreadPool::hardware_threads());
}

}  // namespace
}  // namespace ocr::util

#include <gtest/gtest.h>

#include "levelb/path_finder.hpp"
#include "maze/lee.hpp"
#include "util/rng.hpp"

namespace ocr::maze {
namespace {

using geom::Interval;
using geom::Point;
using geom::Rect;

tig::TrackGrid open_grid(geom::Coord size = 200) {
  return tig::TrackGrid::uniform(Rect(0, 0, size, size), 10, 10);
}

TEST(Lee, StraightPath) {
  const auto grid = open_grid();
  const auto r = lee_connect(grid, Point{5, 25}, Point{175, 25});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.path.length(), 170);
  EXPECT_EQ(r.path.corners(), 0);
}

TEST(Lee, LShapePath) {
  const auto grid = open_grid();
  const auto r = lee_connect(grid, Point{5, 5}, Point{175, 175});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.path.length(), 340);
  // Straight-continuation retrace keeps corners minimal among shortest.
  EXPECT_LE(r.path.corners(), 3);
}

TEST(Lee, IdenticalEndpoints) {
  const auto grid = open_grid();
  const auto r = lee_connect(grid, Point{5, 5}, Point{5, 5});
  EXPECT_TRUE(r.found);
  EXPECT_TRUE(r.path.empty());
}

TEST(Lee, AvoidsObstacle) {
  auto grid = open_grid();
  const Rect wall(90, 0, 110, 160);
  grid.block_region_h(wall);
  grid.block_region_v(wall);
  const auto r = lee_connect(grid, Point{5, 45}, Point{195, 45});
  ASSERT_TRUE(r.found);
  geom::Coord max_y = 0;
  for (const auto& p : r.path.points) max_y = std::max(max_y, p.y);
  EXPECT_GT(max_y, 160);
  EXPECT_TRUE(
      levelb::validate_path(grid, r.path, Point{5, 45}, Point{195, 45})
          .empty());
}

TEST(Lee, ReportsUnreachable) {
  auto grid = open_grid();
  const Rect wall(90, 0, 110, 200);
  grid.block_region_h(wall);
  grid.block_region_v(wall);
  const auto r = lee_connect(grid, Point{5, 45}, Point{195, 45});
  EXPECT_FALSE(r.found);
}

TEST(LeeVsMbfs, AgreeOnReachabilityAndLength) {
  util::Rng rng(4242);
  for (int trial = 0; trial < 25; ++trial) {
    auto grid = open_grid(300);
    const int blocks = static_cast<int>(rng.uniform_int(0, 12));
    for (int k = 0; k < blocks; ++k) {
      const geom::Coord x = rng.uniform_int(0, 260);
      const geom::Coord y = rng.uniform_int(0, 260);
      const Rect r(x, y, x + rng.uniform_int(5, 50),
                   y + rng.uniform_int(5, 50));
      grid.block_region_h(r);
      grid.block_region_v(r);
    }
    const Point a = grid.crossing(
        static_cast<int>(rng.uniform_int(0, grid.num_h() - 1)),
        static_cast<int>(rng.uniform_int(0, grid.num_v() - 1)));
    const Point b = grid.crossing(
        static_cast<int>(rng.uniform_int(0, grid.num_h() - 1)),
        static_cast<int>(rng.uniform_int(0, grid.num_v() - 1)));
    if (a == b) continue;
    const auto lee = lee_connect(grid, a, b);
    const levelb::PathFinder finder(grid);
    const auto ctx = levelb::make_cost_context(grid, nullptr);
    const auto mbfs = finder.connect(a, b, ctx);
    // MBFS restricted windows never *create* reachability; with full-grid
    // fallback both should agree.
    EXPECT_EQ(lee.found, mbfs.found) << "trial " << trial;
    if (lee.found && mbfs.found) {
      // Lee is shortest-path; MBFS minimizes corners, so its length can
      // exceed Lee's but never undercut it.
      EXPECT_GE(mbfs.path.length(), lee.path.length()) << "trial " << trial;
      // And MBFS never uses more corners than Lee's retrace.
      EXPECT_LE(mbfs.corners, std::max(lee.path.corners(), 1))
          << "trial " << trial;
    }
  }
}

TEST(LeeVsMbfs, MbfsExaminesFewerVertices) {
  // The paper's efficiency claim: track-based search touches far fewer
  // vertices than cell-based wave propagation on long connections.
  const auto grid = open_grid(500);
  const Point a{5, 5};
  const Point b{495, 495};
  const auto lee = lee_connect(grid, a, b);
  const levelb::PathFinder finder(grid);
  const auto ctx = levelb::make_cost_context(grid, nullptr);
  const auto mbfs = finder.connect(a, b, ctx);
  ASSERT_TRUE(lee.found);
  ASSERT_TRUE(mbfs.found);
  EXPECT_LT(mbfs.stats.vertices_examined, lee.cells_expanded / 4);
}

}  // namespace
}  // namespace ocr::maze

/// \file job_io_test.cpp
/// \brief JSONL job codec tests: strict request parsing, response
/// round-trips, and the failure modes the daemon relies on to answer
/// malformed lines with exit_class 2 instead of crashing or hanging.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "io/job_io.hpp"
#include "io/journal_io.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace ocr::io {
namespace {

TEST(JobRequestParse, DefaultsApplyWhenFieldsAreOmitted) {
  const auto request = parse_job_request(R"({"example":"ami33"})");
  ASSERT_TRUE(request.ok()) << request.status().to_string();
  EXPECT_EQ(request->id, "");
  EXPECT_EQ(request->example, "ami33");
  EXPECT_EQ(request->input, "");
  EXPECT_EQ(request->flow, "overcell");
  EXPECT_EQ(request->partition, "class");
  EXPECT_EQ(request->threads, 1);
  EXPECT_EQ(request->deadline_ms, 0);
  EXPECT_EQ(request->net_effort, 0);
  EXPECT_EQ(request->fail_policy, "degrade");
  EXPECT_EQ(request->faults, "-");  // never inherits OCR_FAULTS
  EXPECT_EQ(request->manifest, "");
}

TEST(JobRequestParse, EveryFieldDecodes) {
  const auto request = parse_job_request(
      R"({"id":"j1","input":"chip.oclay","flow":"4layer",)"
      R"("partition":"length=2000","threads":4,"deadline_ms":5000,)"
      R"("net_effort":100,"fail_policy":"abort",)"
      R"("faults":"engine.committer.commit=2","manifest":"out/j1.json"})");
  ASSERT_TRUE(request.ok()) << request.status().to_string();
  EXPECT_EQ(request->id, "j1");
  EXPECT_EQ(request->input, "chip.oclay");
  EXPECT_EQ(request->flow, "4layer");
  EXPECT_EQ(request->partition, "length=2000");
  EXPECT_EQ(request->threads, 4);
  EXPECT_EQ(request->deadline_ms, 5000);
  EXPECT_EQ(request->net_effort, 100);
  EXPECT_EQ(request->fail_policy, "abort");
  EXPECT_EQ(request->faults, "engine.committer.commit=2");
  EXPECT_EQ(request->manifest, "out/j1.json");
}

TEST(JobRequestParse, WhitespaceAndEscapesAreHandled)  {
  const auto request = parse_job_request(
      "  { \"id\" : \"a\\tb\\\"c\" , \"example\" : \"ex3\" }  ");
  ASSERT_TRUE(request.ok()) << request.status().to_string();
  EXPECT_EQ(request->id, "a\tb\"c");
  EXPECT_EQ(request->example, "ex3");
}

TEST(JobRequestParse, RejectsUnknownField) {
  const auto request = parse_job_request(R"({"example":"ami33","typo":1})");
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().kind(), util::StatusKind::kParseError);
  EXPECT_NE(request.status().message().find("unknown field 'typo'"),
            std::string::npos);
}

TEST(JobRequestParse, RejectsMalformedJson) {
  for (const char* line : {
           "",                               // not an object
           "not json",                       //
           "{\"id\":\"a\"",                  // unterminated object
           R"({"id":"a" "b":1})",            // missing comma
           R"({"id":"a",})",                 // trailing comma
           R"({"id":"a"} extra)",            // trailing garbage
           R"({"id":"a","id":"b"})",         // duplicate key
           R"({"threads":{"nested":1}})",    // nested object
           R"({"threads":[1,2]})",           // array
           R"({"id":"unterminated)",         // unterminated string
           R"({"threads":12.")",             // bad number
       }) {
    const auto request = parse_job_request(line);
    EXPECT_FALSE(request.ok()) << "accepted: " << line;
    if (!request.ok()) {
      EXPECT_EQ(request.status().kind(), util::StatusKind::kParseError)
          << line;
    }
  }
}

TEST(JobRequestParse, RejectsWrongFieldTypes) {
  EXPECT_FALSE(parse_job_request(R"({"threads":"two"})").ok());
  EXPECT_FALSE(parse_job_request(R"({"example":33})").ok());
  EXPECT_FALSE(parse_job_request(R"({"deadline_ms":true})").ok());
}

TEST(JobResponse, RoundTripsThroughRenderAndParse) {
  JobResponse response;
  response.id = "job-42";
  response.status = "partial";
  response.exit_class = 3;
  response.queue_ms = 7;
  response.run_ms = 123;
  response.wire_length = 456789;
  response.vias = 321;
  response.unrouted_nets = 5;
  response.cancelled_nets = 2;
  response.deadline_fired = true;
  response.faults_injected = 1;
  response.error = "watchdog: deadline of 5 ms exceeded";
  response.manifest = "out/job-42.json";

  const std::string line = render_job_response(response);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // single line

  const auto parsed = parse_job_response(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->id, response.id);
  EXPECT_EQ(parsed->status, response.status);
  EXPECT_EQ(parsed->exit_class, response.exit_class);
  EXPECT_EQ(parsed->queue_ms, response.queue_ms);
  EXPECT_EQ(parsed->run_ms, response.run_ms);
  EXPECT_EQ(parsed->wire_length, response.wire_length);
  EXPECT_EQ(parsed->vias, response.vias);
  EXPECT_EQ(parsed->unrouted_nets, response.unrouted_nets);
  EXPECT_EQ(parsed->cancelled_nets, response.cancelled_nets);
  EXPECT_EQ(parsed->deadline_fired, response.deadline_fired);
  EXPECT_EQ(parsed->faults_injected, response.faults_injected);
  EXPECT_EQ(parsed->error, response.error);
  EXPECT_EQ(parsed->manifest, response.manifest);
}

TEST(JobResponse, RenderEscapesErrorText) {
  JobResponse response;
  response.id = "x";
  response.status = "failed";
  response.exit_class = 1;
  response.error = "line 1\n\"quoted\"\tpath\\seg";

  const auto parsed = parse_job_response(render_job_response(response));
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->error, response.error);
}

TEST(JobResponse, ParseToleratesExtraFieldsForForwardCompat) {
  JobResponse response;
  response.id = "x";
  response.status = "clean";
  std::string line = render_job_response(response);
  line.insert(line.size() - 1, R"(,"future_field":1)");
  const auto parsed = parse_job_response(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->id, "x");
}

TEST(JobResponse, AttemptsAndReplayedRoundTrip) {
  JobResponse response;
  response.id = "r";
  response.status = "clean";
  response.attempts = 3;
  response.replayed = true;
  const std::string line = render_job_response(response);
  EXPECT_NE(line.find("\"replayed\":true"), std::string::npos);
  const auto parsed = parse_job_response(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->attempts, 3);
  EXPECT_TRUE(parsed->replayed);

  // `replayed` is elided when false (the overwhelmingly common case).
  response.replayed = false;
  EXPECT_EQ(render_job_response(response).find("replayed"),
            std::string::npos);
}

/// Satellite fuzz: ~1k truncated or byte-corrupted journal lines. The
/// journal recovery path feeds crash-damaged bytes straight into
/// parse_journal_record, so every mutation must come back as a Status —
/// never a crash, hang or uncaught exception — and damage must never
/// silently pass as a different valid record.
TEST(JournalRecordFuzz, TruncatedAndCorruptedLinesNeverCrash) {
  const std::vector<std::string> seeds = {
      R"({"event":"accepted","seq":1,"id":"job-1","attempt":0,"request":"{\"id\":\"job-1\",\"example\":\"ami33\"}"})",
      R"({"event":"started","seq":2,"id":"job-1","attempt":0})",
      R"({"event":"retry","seq":3,"id":"job-1","attempt":0,"backoff_ms":20,"error":"[cancelled] supervise: worker hung"})",
      R"({"event":"completed","seq":4,"id":"job-1","attempt":1,"status":"clean","exit_class":0,"wire_length":399764,"vias":1058,"unrouted_nets":0,"cancelled_nets":0,"run_ms":41})",
      R"({"event":"failed","seq":5,"id":"job-2","attempt":2,"status":"failed","exit_class":1,"wire_length":0,"vias":0,"unrouted_nets":3,"cancelled_nets":1,"run_ms":9,"error":"boom"})",
      R"({"event":"responded","seq":6,"id":"job-1"})",
      R"({"event":"drain","seq":7,"unfinished":0})",
  };

  // Every truncation prefix of every seed (the torn-tail shape a SIGKILL
  // mid-write actually produces).
  int fuzzed_lines = 0;
  for (const std::string& seed : seeds) {
    for (std::size_t cut = 0; cut < seed.size(); ++cut) {
      // A strict prefix is never a complete record; surviving the call
      // with a Status (not a crash) is the property under test.
      EXPECT_FALSE(parse_journal_record(seed.substr(0, cut)).ok());
      ++fuzzed_lines;
    }
  }
  EXPECT_GT(fuzzed_lines, 600);

  // Random single-byte corruptions (bit flips, deletions, insertions).
  util::Rng rng(20260808);
  for (int round = 0; round < 400; ++round) {
    std::string line = seeds[rng.index(seeds.size())];
    const std::size_t pos = rng.index(line.size());
    switch (rng.uniform_int(0, 2)) {
      case 0:
        line[pos] = static_cast<char>(rng.uniform_int(1, 255));
        break;
      case 1:
        line.erase(pos, 1);
        break;
      default:
        line.insert(pos, 1, static_cast<char>(rng.uniform_int(32, 126)));
        break;
    }
    const auto result = parse_journal_record(line);
    if (!result.ok()) {
      // Damage reports carry the codec's parse stage so recovery can
      // locate the bad line in its summary.
      EXPECT_FALSE(result.status().to_string().empty());
    }
  }
}

}  // namespace
}  // namespace ocr::io

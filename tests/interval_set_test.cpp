#include <gtest/gtest.h>

#include "geom/interval_set.hpp"
#include "util/rng.hpp"

namespace ocr::geom {
namespace {

TEST(IntervalSet, StartsEmpty) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.is_free(Interval(-100, 100)));
  EXPECT_EQ(s.blocked_length(), 0);
}

TEST(IntervalSet, AddAndQuery) {
  IntervalSet s;
  s.add(Interval(5, 10));
  EXPECT_TRUE(s.contains(5));
  EXPECT_TRUE(s.contains(10));
  EXPECT_FALSE(s.contains(4));
  EXPECT_FALSE(s.contains(11));
  EXPECT_TRUE(s.intersects(Interval(0, 5)));
  EXPECT_FALSE(s.intersects(Interval(0, 4)));
  EXPECT_TRUE(s.is_free(Interval(11, 20)));
}

TEST(IntervalSet, MergesOverlapping) {
  IntervalSet s;
  s.add(Interval(0, 5));
  s.add(Interval(3, 9));
  ASSERT_EQ(s.runs().size(), 1u);
  EXPECT_EQ(s.runs()[0], Interval(0, 9));
}

TEST(IntervalSet, MergesAdjacent) {
  IntervalSet s;
  s.add(Interval(0, 5));
  s.add(Interval(6, 9));  // adjacent on the integer lattice
  ASSERT_EQ(s.runs().size(), 1u);
  EXPECT_EQ(s.runs()[0], Interval(0, 9));
}

TEST(IntervalSet, KeepsDisjointRunsSorted) {
  IntervalSet s;
  s.add(Interval(20, 30));
  s.add(Interval(0, 5));
  s.add(Interval(10, 12));
  ASSERT_EQ(s.runs().size(), 3u);
  EXPECT_EQ(s.runs()[0], Interval(0, 5));
  EXPECT_EQ(s.runs()[1], Interval(10, 12));
  EXPECT_EQ(s.runs()[2], Interval(20, 30));
}

TEST(IntervalSet, AddSpanningManyRuns) {
  IntervalSet s;
  s.add(Interval(0, 1));
  s.add(Interval(5, 6));
  s.add(Interval(10, 11));
  s.add(Interval(1, 10));
  ASSERT_EQ(s.runs().size(), 1u);
  EXPECT_EQ(s.runs()[0], Interval(0, 11));
}

TEST(IntervalSet, RemoveSplitsRun) {
  IntervalSet s;
  s.add(Interval(0, 10));
  s.remove(Interval(4, 6));
  ASSERT_EQ(s.runs().size(), 2u);
  EXPECT_EQ(s.runs()[0], Interval(0, 3));
  EXPECT_EQ(s.runs()[1], Interval(7, 10));
}

TEST(IntervalSet, RemoveWholeAndEdges) {
  IntervalSet s;
  s.add(Interval(0, 10));
  s.remove(Interval(0, 10));
  EXPECT_TRUE(s.empty());

  s.add(Interval(0, 10));
  s.remove(Interval(0, 3));
  ASSERT_EQ(s.runs().size(), 1u);
  EXPECT_EQ(s.runs()[0], Interval(4, 10));
  s.remove(Interval(8, 12));
  ASSERT_EQ(s.runs().size(), 1u);
  EXPECT_EQ(s.runs()[0], Interval(4, 7));
}

TEST(IntervalSet, RemoveNoopOutside) {
  IntervalSet s;
  s.add(Interval(5, 7));
  s.remove(Interval(0, 4));
  s.remove(Interval(8, 20));
  ASSERT_EQ(s.runs().size(), 1u);
  EXPECT_EQ(s.runs()[0], Interval(5, 7));
}

TEST(IntervalSet, BlockedLength) {
  IntervalSet s;
  s.add(Interval(0, 5));
  s.add(Interval(10, 12));
  EXPECT_EQ(s.blocked_length(), 7);
}

TEST(IntervalSet, FreeGaps) {
  IntervalSet s;
  s.add(Interval(3, 4));
  s.add(Interval(8, 9));
  const auto gaps = s.free_gaps(Interval(0, 12));
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0], Interval(0, 2));
  EXPECT_EQ(gaps[1], Interval(5, 7));
  EXPECT_EQ(gaps[2], Interval(10, 12));
}

TEST(IntervalSet, FreeGapsFullyBlocked) {
  IntervalSet s;
  s.add(Interval(-5, 20));
  EXPECT_TRUE(s.free_gaps(Interval(0, 10)).empty());
}

TEST(IntervalSet, FreeGapsEmptySet) {
  IntervalSet s;
  const auto gaps = s.free_gaps(Interval(2, 9));
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], Interval(2, 9));
}

TEST(IntervalSet, ZeroLengthRunBlocksPoint) {
  IntervalSet s;
  s.add(Interval(5, 5));
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(s.blocked_length(), 0);
}

/// Property test: IntervalSet agrees with a brute-force boolean array under
/// random add/remove sequences.
TEST(IntervalSetProperty, MatchesBruteForce) {
  util::Rng rng(2024);
  constexpr int kUniverse = 64;
  for (int trial = 0; trial < 50; ++trial) {
    IntervalSet s;
    bool blocked[kUniverse] = {};
    for (int step = 0; step < 40; ++step) {
      const int a = static_cast<int>(rng.uniform_int(0, kUniverse - 1));
      const int b = static_cast<int>(rng.uniform_int(0, kUniverse - 1));
      const Interval iv(std::min(a, b), std::max(a, b));
      if (rng.chance(0.6)) {
        s.add(iv);
        for (Coord v = iv.lo; v <= iv.hi; ++v) blocked[v] = true;
      } else {
        s.remove(iv);
        for (Coord v = iv.lo; v <= iv.hi; ++v) blocked[v] = false;
      }
      for (int v = 0; v < kUniverse; ++v) {
        ASSERT_EQ(s.contains(v), blocked[v])
            << "trial " << trial << " step " << step << " coord " << v;
      }
      // Runs stay canonical: sorted, disjoint, non-adjacent.
      const auto& runs = s.runs();
      for (std::size_t i = 1; i < runs.size(); ++i) {
        ASSERT_GT(runs[i].lo, runs[i - 1].hi + 1);
      }
    }
  }
}

}  // namespace
}  // namespace ocr::geom

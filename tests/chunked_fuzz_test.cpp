/// \file chunked_fuzz_test.cpp
/// \brief Chunked-vs-dense equivalence for the TrackGrid occupancy
/// storage: randomized block/unblock/region/query histories must answer
/// bit-identically to a dense per-track reference model
/// (std::vector<IntervalSet> + the IntervalSet free-gap primitives),
/// which is exactly the storage the grid used before chunking. Also
/// covers the degenerate shapes chunking introduces: a 1-track grid
/// (one partial chunk) and queries over never-touched chunks.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "geom/interval_set.hpp"
#include "tig/track_grid.hpp"
#include "util/rng.hpp"

namespace ocr::tig {
namespace {

using geom::Interval;
using geom::IntervalSet;
using geom::Rect;

/// Dense mirror of one grid orientation: the pre-chunking representation,
/// updated through the same operation stream as the grid under test.
struct DenseRef {
  std::vector<IntervalSet> blocked;

  explicit DenseRef(int tracks) : blocked(static_cast<std::size_t>(tracks)) {}

  void block(int i, const Interval& span) {
    blocked[static_cast<std::size_t>(i)].add(span);
  }
  void unblock(int i, const Interval& span) {
    blocked[static_cast<std::size_t>(i)].remove(span);
  }
};

/// Compares every observable of horizontal track \p i between grid and
/// reference at probe coordinate \p x.
void expect_h_equal(const TrackGrid& grid, const DenseRef& ref, int i,
                    geom::Coord x) {
  const IntervalSet& expect = ref.blocked[static_cast<std::size_t>(i)];
  ASSERT_EQ(grid.h_blocked(i).runs(), expect.runs()) << "track " << i;
  const std::optional<Interval> gap =
      expect.free_gap_containing(grid.h_span(), x);
  const std::optional<Interval> got = grid.h_free_segment(i, x);
  ASSERT_EQ(got.has_value(), gap.has_value()) << "i=" << i << " x=" << x;
  if (gap.has_value()) {
    EXPECT_EQ(got->lo, gap->lo);
    EXPECT_EQ(got->hi, gap->hi);
    // The span variant must report exactly the binary-search index range.
    int j_first = 0, j_last = -1;
    const std::optional<Interval> span_gap =
        grid.h_free_segment_span(i, x, &j_first, &j_last);
    ASSERT_TRUE(span_gap.has_value());
    EXPECT_EQ(span_gap->lo, gap->lo);
    EXPECT_EQ(span_gap->hi, gap->hi);
    EXPECT_EQ(j_first, grid.first_v_at_or_above(gap->lo));
    EXPECT_EQ(j_last, grid.last_v_at_or_below(gap->hi));
  }
  EXPECT_EQ(grid.h_is_free(i, Interval{x, x}), gap.has_value());
}

void expect_v_equal(const TrackGrid& grid, const DenseRef& ref, int j,
                    geom::Coord y) {
  const IntervalSet& expect = ref.blocked[static_cast<std::size_t>(j)];
  ASSERT_EQ(grid.v_blocked(j).runs(), expect.runs()) << "track " << j;
  const std::optional<Interval> gap =
      expect.free_gap_containing(grid.v_span(), y);
  const std::optional<Interval> got = grid.v_free_segment(j, y);
  ASSERT_EQ(got.has_value(), gap.has_value()) << "j=" << j << " y=" << y;
  if (gap.has_value()) {
    EXPECT_EQ(got->lo, gap->lo);
    EXPECT_EQ(got->hi, gap->hi);
  }
}

TEST(ChunkedFuzz, RandomHistoryMatchesDenseReference) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    util::Rng rng(seed);
    // 1000x1000 die at pitch 10: 100 tracks per orientation, spanning
    // both full and partial chunks.
    TrackGrid grid = TrackGrid::uniform(Rect(0, 0, 1000, 1000), 10, 10);
    DenseRef ref_h(grid.num_h());
    DenseRef ref_v(grid.num_v());
    auto span = [&rng](const Interval& universe) {
      const geom::Coord a = rng.uniform_int(universe.lo, universe.hi);
      const geom::Coord b = rng.uniform_int(universe.lo, universe.hi);
      return a <= b ? Interval{a, b} : Interval{b, a};
    };
    for (int op = 0; op < 600; ++op) {
      const int kind = static_cast<int>(rng.uniform_int(0, 5));
      if (kind <= 1) {  // block one track
        if (rng.uniform_int(0, 1) == 0) {
          const int i = static_cast<int>(
              rng.uniform_int(0, grid.num_h() - 1));
          const Interval s = span(grid.h_span());
          grid.block_h(i, s);
          ref_h.block(i, s);
        } else {
          const int j = static_cast<int>(
              rng.uniform_int(0, grid.num_v() - 1));
          const Interval s = span(grid.v_span());
          grid.block_v(j, s);
          ref_v.block(j, s);
        }
      } else if (kind == 2) {  // unblock (rip-up), often over nothing
        if (rng.uniform_int(0, 1) == 0) {
          const int i = static_cast<int>(
              rng.uniform_int(0, grid.num_h() - 1));
          const Interval s = span(grid.h_span());
          grid.unblock_h(i, s);
          ref_h.unblock(i, s);
        } else {
          const int j = static_cast<int>(
              rng.uniform_int(0, grid.num_v() - 1));
          const Interval s = span(grid.v_span());
          grid.unblock_v(j, s);
          ref_v.unblock(j, s);
        }
      } else if (kind == 3) {  // rectangular obstacle
        const Interval xs = span(grid.h_span());
        const Interval ys = span(grid.v_span());
        const Rect region(xs.lo, ys.lo, xs.hi, ys.hi);
        if (rng.uniform_int(0, 1) == 0) {
          grid.block_region_h(region);
          for (int i = 0; i < grid.num_h(); ++i) {
            if (grid.h_y(i) >= region.ylo && grid.h_y(i) <= region.yhi) {
              ref_h.block(i, region.x_span());
            }
          }
        } else {
          grid.block_region_v(region);
          for (int j = 0; j < grid.num_v(); ++j) {
            if (grid.v_x(j) >= region.xlo && grid.v_x(j) <= region.xhi) {
              ref_v.block(j, region.y_span());
            }
          }
        }
      } else {  // probe a random track (touched or not)
        const int i =
            static_cast<int>(rng.uniform_int(0, grid.num_h() - 1));
        const int j =
            static_cast<int>(rng.uniform_int(0, grid.num_v() - 1));
        expect_h_equal(grid, ref_h, i,
                       rng.uniform_int(grid.h_span().lo, grid.h_span().hi));
        expect_v_equal(grid, ref_v, j,
                       rng.uniform_int(grid.v_span().lo, grid.v_span().hi));
        EXPECT_EQ(grid.crossing_free(i, j),
                  !ref_h.blocked[static_cast<std::size_t>(i)].contains(
                      grid.v_x(j)) &&
                      !ref_v.blocked[static_cast<std::size_t>(j)].contains(
                          grid.h_y(i)));
      }
    }
    // Full sweep at the end of the history, including copies: a copied
    // grid (the snapshot publication path) must carry identical state.
    const TrackGrid copy = grid;
    for (int i = 0; i < grid.num_h(); ++i) {
      expect_h_equal(grid, ref_h, i, grid.h_span().lo);
      expect_h_equal(copy, ref_h, i, grid.h_span().hi);
    }
    for (int j = 0; j < grid.num_v(); ++j) {
      expect_v_equal(grid, ref_v, j, grid.v_span().lo);
      expect_v_equal(copy, ref_v, j, grid.v_span().hi);
    }
  }
}

TEST(ChunkedFuzz, SingleTrackGrid) {
  // One track per orientation: one partial chunk each, every query path
  // must still work (this is the smallest grid a channel can degenerate
  // to).
  TrackGrid grid({50}, {50}, Rect(0, 0, 100, 100));
  ASSERT_EQ(grid.num_h(), 1);
  ASSERT_EQ(grid.num_v(), 1);
  DenseRef ref_h(1);
  EXPECT_TRUE(grid.h_is_free(0, Interval{0, 100}));
  expect_h_equal(grid, ref_h, 0, 50);
  grid.block_h(0, Interval{20, 40});
  ref_h.block(0, Interval{20, 40});
  expect_h_equal(grid, ref_h, 0, 10);
  expect_h_equal(grid, ref_h, 0, 30);
  expect_h_equal(grid, ref_h, 0, 90);
  grid.unblock_h(0, Interval{20, 40});
  ref_h.unblock(0, Interval{20, 40});
  expect_h_equal(grid, ref_h, 0, 30);
  EXPECT_EQ(grid.blocked_chunks(), 1u);  // the block materialized it
}

TEST(ChunkedFuzz, UnblockOfUntouchedTrackIsANoOp) {
  TrackGrid grid = TrackGrid::uniform(Rect(0, 0, 1000, 1000), 10, 10);
  // Rip-up over a track that was never blocked: must not materialize
  // anything or change any answer.
  grid.unblock_h(7, Interval{100, 200});
  grid.unblock_v(9, Interval{300, 400});
  EXPECT_EQ(grid.blocked_chunks(), 0u);
  EXPECT_TRUE(grid.h_is_free(7, Interval{0, 1000}));
  EXPECT_TRUE(grid.v_is_free(9, Interval{0, 1000}));
}

TEST(ChunkedFuzz, SparseBlockingMaterializesFewChunks) {
  // 4000 tracks per orientation; blocking 3 tracks must materialize at
  // most 3 chunks per orientation — the memory claim of the chunked
  // design, and grid_bytes must see through to the truth.
  TrackGrid grid = TrackGrid::uniform(Rect(0, 0, 40000, 40000), 10, 10);
  ASSERT_GE(grid.num_h(), 3999);
  const std::size_t before = grid.grid_bytes();
  grid.block_h(0, Interval{0, 100});
  grid.block_h(2000, Interval{0, 100});
  grid.block_v(3900, Interval{0, 100});
  EXPECT_LE(grid.blocked_chunks(), 3u);
  EXPECT_GT(grid.grid_bytes(), before);
}

}  // namespace
}  // namespace ocr::tig

/// \file sample_data_test.cpp
/// \brief The shipped sample instance (data/sample.oclay) must always
/// parse, validate, route cleanly and pass the end-to-end checker.

#include <gtest/gtest.h>

#include "flow/check.hpp"
#include "flow/flow.hpp"
#include "io/layout_io.hpp"
#include "partition/partition.hpp"

#ifndef OCR_SOURCE_DIR
#define OCR_SOURCE_DIR "."
#endif

namespace ocr {
namespace {

TEST(SampleData, LoadsAndRoutes) {
  const std::string path = std::string(OCR_SOURCE_DIR) + "/data/sample.oclay";
  const auto parsed = io::load_layout(path);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const floorplan::MacroLayout& ml = *parsed.layout;
  EXPECT_EQ(ml.cells().size(), 4u);
  EXPECT_EQ(ml.nets().size(), 6u);
  EXPECT_EQ(ml.obstacles().size(), 1u);

  const auto layout = ml.assemble(
      std::vector<geom::Coord>(static_cast<std::size_t>(ml.num_channels()),
                               0));
  const auto partition = partition::partition_by_class(layout);
  EXPECT_EQ(partition.set_a.size(), 1u);  // the clock net

  flow::FlowArtifacts artifacts;
  const auto metrics = flow::run_over_cell_flow(
      ml, partition, flow::FlowOptions{}, &artifacts);
  EXPECT_TRUE(metrics.success)
      << (metrics.problems.empty() ? "" : metrics.problems[0]);
  EXPECT_DOUBLE_EQ(metrics.levelb_completion, 1.0);

  const auto violations = flow::check_over_cell_result(artifacts);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front());
}

TEST(SampleData, RoundTripsThroughSerializer) {
  const std::string path = std::string(OCR_SOURCE_DIR) + "/data/sample.oclay";
  const auto parsed = io::load_layout(path);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const std::string text = io::write_layout_text(*parsed.layout);
  const auto reparsed = io::read_layout_text(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error;
  EXPECT_EQ(io::write_layout_text(*reparsed.layout), text);
}

}  // namespace
}  // namespace ocr

/// \file chunked_test.cpp
/// \brief ChunkedVector semantics: observational equivalence to a dense
/// vector initialized to the default, lazy chunk materialization, deep
/// copies of only the present chunks, and the partial-last-chunk /
/// single-element / empty edge cases the track grids depend on.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/chunked.hpp"

namespace ocr::util {
namespace {

constexpr std::size_t kChunk = ChunkedVector<int>::kChunkSize;

TEST(ChunkedVector, DefaultReadsNeverMaterialize) {
  ChunkedVector<int> v(7);
  v.reset(3 * kChunk);
  EXPECT_EQ(v.size(), 3 * kChunk);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v.at(i), 7);
    EXPECT_EQ(v.find(i), nullptr);
    EXPECT_FALSE(v.chunk_present(i));
  }
  EXPECT_EQ(v.materialized_chunks(), 0u);
}

TEST(ChunkedVector, TouchMaterializesOneChunkFilledWithDefault) {
  ChunkedVector<int> v(-1);
  v.reset(4 * kChunk);
  v.touch(kChunk + 5) = 42;
  EXPECT_EQ(v.materialized_chunks(), 1u);
  EXPECT_EQ(v.at(kChunk + 5), 42);
  // Neighbors in the same chunk exist and hold the default.
  EXPECT_TRUE(v.chunk_present(kChunk));
  ASSERT_NE(v.find(kChunk + 6), nullptr);
  EXPECT_EQ(*v.find(kChunk + 6), -1);
  // Other chunks stay absent.
  EXPECT_FALSE(v.chunk_present(0));
  EXPECT_FALSE(v.chunk_present(2 * kChunk));
  // Touch of an already-present index is a plain access.
  v.touch(kChunk + 5) += 1;
  EXPECT_EQ(v.at(kChunk + 5), 43);
  EXPECT_EQ(v.materialized_chunks(), 1u);
}

TEST(ChunkedVector, SingleElementContainer) {
  // The 1-track grid: one partial chunk holding one element.
  ChunkedVector<int> v(9);
  v.reset(1);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.at(0), 9);
  v.touch(0) = 1;
  EXPECT_EQ(v.at(0), 1);
  EXPECT_EQ(v.materialized_chunks(), 1u);
  int visits = 0;
  v.for_each_present([&](std::size_t i, const int& e) {
    EXPECT_EQ(i, 0u);
    EXPECT_EQ(e, 1);
    ++visits;
  });
  EXPECT_EQ(visits, 1);
}

TEST(ChunkedVector, EmptyContainer) {
  ChunkedVector<int> v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.materialized_chunks(), 0u);
  v.reset(0);
  int visits = 0;
  v.for_each_present([&](std::size_t, const int&) { ++visits; });
  EXPECT_EQ(visits, 0);
}

TEST(ChunkedVector, ForEachPresentSkipsTailPastSize) {
  // A size that ends mid-chunk: the tail slots of the last chunk exist in
  // storage but must never be exposed.
  ChunkedVector<int> v(0);
  v.reset(kChunk + 3);
  v.touch(kChunk + 2) = 5;   // materializes the partial last chunk
  std::vector<std::size_t> seen;
  v.for_each_present([&](std::size_t i, const int&) { seen.push_back(i); });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen.front(), kChunk);
  EXPECT_EQ(seen.back(), kChunk + 2);
}

TEST(ChunkedVector, MutableForEachWrites) {
  ChunkedVector<int> v(0);
  v.reset(2 * kChunk);
  v.touch(3) = 1;
  v.for_each_present([](std::size_t, int& e) { e += 10; });
  EXPECT_EQ(v.at(3), 11);
  EXPECT_EQ(v.at(4), 10);          // default slot in the present chunk
  EXPECT_EQ(v.at(kChunk), 0);      // absent chunk untouched
  EXPECT_EQ(v.materialized_chunks(), 1u);
}

TEST(ChunkedVector, CopyIsDeepAndSparse) {
  ChunkedVector<std::string> v(std::string("dflt"));
  v.reset(3 * kChunk);
  v.touch(2 * kChunk + 1) = "hello";
  ChunkedVector<std::string> c(v);
  EXPECT_EQ(c.materialized_chunks(), 1u);
  EXPECT_EQ(c.at(2 * kChunk + 1), "hello");
  EXPECT_EQ(c.at(0), "dflt");
  // Mutating the copy must not leak into the original (deep chunks).
  c.touch(2 * kChunk + 1) = "changed";
  c.touch(0) = "new-chunk";
  EXPECT_EQ(v.at(2 * kChunk + 1), "hello");
  EXPECT_FALSE(v.chunk_present(0));
  // Copy-assign too.
  ChunkedVector<std::string> a;
  a = v;
  EXPECT_EQ(a.size(), v.size());
  EXPECT_EQ(a.at(2 * kChunk + 1), "hello");
}

TEST(ChunkedVector, ResetDropsChunksAndResizes) {
  ChunkedVector<int> v(4);
  v.reset(kChunk);
  v.touch(0) = 99;
  v.reset(2 * kChunk);
  EXPECT_EQ(v.size(), 2 * kChunk);
  EXPECT_EQ(v.materialized_chunks(), 0u);
  EXPECT_EQ(v.at(0), 4);
}

TEST(ChunkedVector, StorageBytesGrowsWithMaterialization) {
  ChunkedVector<int> v(0);
  v.reset(8 * kChunk);
  const std::size_t empty = v.storage_bytes();
  v.touch(0);
  const std::size_t one = v.storage_bytes();
  EXPECT_GE(one, empty + kChunk * sizeof(int));
  v.touch(7 * kChunk);
  EXPECT_GE(v.storage_bytes(), one + kChunk * sizeof(int));
}

TEST(ChunkedVector, DenseEquivalenceFuzz) {
  // Random touch/write sequences must read back exactly like a dense
  // vector initialized to the default.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const std::size_t n = 5 * kChunk + 17;
  ChunkedVector<int> v(-3);
  v.reset(n);
  std::vector<int> dense(n, -3);
  for (int op = 0; op < 2000; ++op) {
    const std::size_t i = next() % n;
    if (next() % 3 == 0) {
      const int value = static_cast<int>(next() % 1000);
      v.touch(i) = value;
      dense[i] = value;
    } else {
      EXPECT_EQ(v.at(i), dense[i]) << "i=" << i;
      const int* f = std::as_const(v).find(i);
      if (f != nullptr) {
        EXPECT_EQ(*f, dense[i]);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(v.at(i), dense[i]);
}

}  // namespace
}  // namespace ocr::util

#include <gtest/gtest.h>

#include "bench_data/synthetic.hpp"
#include "io/layout_io.hpp"

namespace ocr::io {
namespace {

using floorplan::MacroCell;
using floorplan::MacroLayout;
using floorplan::MacroNet;
using floorplan::MacroObstacle;
using floorplan::MacroPin;

MacroLayout tiny() {
  MacroLayout ml("tiny", 400);
  ml.add_row(100);
  ml.add_cell(MacroCell{"a", 120, 90, 0, 40});
  ml.add_cell(MacroCell{"b", 150, 100, 0, 220});
  const int n0 = ml.add_net(MacroNet{"n0", netlist::NetClass::kSignal});
  ml.add_pin(MacroPin{n0, 0, true, 30});
  ml.add_pin(MacroPin{n0, 1, true, 60});
  const int n1 = ml.add_net(MacroNet{"clk", netlist::NetClass::kClock});
  ml.add_pin(MacroPin{n1, 0, false, 60});
  ml.add_pin(MacroPin{n1, -1, false, 200});
  ml.add_obstacle(MacroObstacle{1, /*x_lo=*/10, /*x_hi=*/140,
                                /*y_lo=*/40, /*y_hi=*/60, true, false,
                                "strap"});
  return ml;
}

TEST(LayoutIo, RoundTripTiny) {
  const MacroLayout original = tiny();
  const std::string text = write_layout_text(original);
  const ParseResult parsed = read_layout_text(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const MacroLayout& loaded = *parsed.layout;
  EXPECT_EQ(loaded.name(), original.name());
  EXPECT_EQ(loaded.die_width(), original.die_width());
  EXPECT_EQ(loaded.num_rows(), original.num_rows());
  ASSERT_EQ(loaded.cells().size(), original.cells().size());
  for (std::size_t i = 0; i < loaded.cells().size(); ++i) {
    EXPECT_EQ(loaded.cells()[i].name, original.cells()[i].name);
    EXPECT_EQ(loaded.cells()[i].x, original.cells()[i].x);
    EXPECT_EQ(loaded.cells()[i].width, original.cells()[i].width);
  }
  ASSERT_EQ(loaded.pins().size(), original.pins().size());
  for (std::size_t i = 0; i < loaded.pins().size(); ++i) {
    EXPECT_EQ(loaded.pins()[i].net, original.pins()[i].net);
    EXPECT_EQ(loaded.pins()[i].cell, original.pins()[i].cell);
    EXPECT_EQ(loaded.pins()[i].north, original.pins()[i].north);
    EXPECT_EQ(loaded.pins()[i].x, original.pins()[i].x);
  }
  ASSERT_EQ(loaded.obstacles().size(), 1u);
  EXPECT_EQ(loaded.obstacles()[0].reason, "strap");
  EXPECT_TRUE(loaded.obstacles()[0].blocks_metal3);
  EXPECT_FALSE(loaded.obstacles()[0].blocks_metal4);
}

TEST(LayoutIo, RoundTripGeneratedInstance) {
  const auto original = bench_data::generate_macro_layout(
      bench_data::random_spec(77, 0.5));
  const ParseResult parsed =
      read_layout_text(write_layout_text(original));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.layout->cells().size(), original.cells().size());
  EXPECT_EQ(parsed.layout->nets().size(), original.nets().size());
  EXPECT_EQ(parsed.layout->pins().size(), original.pins().size());
  EXPECT_EQ(parsed.layout->obstacles().size(),
            original.obstacles().size());
  // Second serialization is byte-identical (canonical form).
  EXPECT_EQ(write_layout_text(*parsed.layout), write_layout_text(original));
}

TEST(LayoutIo, CommentsAndBlanksIgnored) {
  const std::string text =
      "# header comment\n"
      "\n"
      "layout t 100   # trailing comment\n"
      "row 50\n"
      "cell a 0 10 40 50\n"
      "net n signal\n"
      "pin 0 0 N 5\n"
      "pin 0 -1 S 90\n";
  const auto parsed = read_layout_text(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.layout->pins().size(), 2u);
}

TEST(LayoutIo, ErrorsNameTheLine) {
  const std::string text =
      "layout t 100\n"
      "row 50\n"
      "cell a 0 10 40 999\n";  // cell taller than its row
  const auto parsed = read_layout_text(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("line 3"), std::string::npos);
}

TEST(LayoutIo, RejectsUnknownDirective) {
  const auto parsed = read_layout_text("layout t 100\nfrobnicate 1\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("frobnicate"), std::string::npos);
}

TEST(LayoutIo, RejectsPinBeforeNet) {
  const auto parsed =
      read_layout_text("layout t 100\nrow 50\ncell a 0 0 40 40\n"
                       "pin 0 0 N 5\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("undeclared net"), std::string::npos);
}

TEST(LayoutIo, RejectsMissingLayoutHeader) {
  const auto parsed = read_layout_text("row 50\n");
  ASSERT_FALSE(parsed.ok());
}

TEST(LayoutIo, RejectsInvalidLayout) {
  // Net with a single pin fails MacroLayout::validate at the end.
  const std::string text =
      "layout t 100\nrow 50\ncell a 0 0 40 40\nnet n signal\n"
      "pin 0 0 N 5\n";
  const auto parsed = read_layout_text(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("invalid"), std::string::npos);
}

TEST(LayoutIo, FileRoundTrip) {
  const MacroLayout original = tiny();
  const std::string path = ::testing::TempDir() + "/ocr_io_test.oclay";
  ASSERT_TRUE(save_layout(original, path));
  const auto parsed = load_layout(path);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(write_layout_text(*parsed.layout), write_layout_text(original));
  std::remove(path.c_str());
}

TEST(LayoutIo, LoadMissingFileFails) {
  const auto parsed = load_layout("/nonexistent/file.oclay");
  EXPECT_FALSE(parsed.ok());
  EXPECT_FALSE(parsed.error.empty());
}

}  // namespace
}  // namespace ocr::io

/// \file gap_cache_test.cpp
/// \brief GapCache correctness: the cached free-gap lists — including the
/// incremental block/unblock patching — must answer every free-segment
/// query exactly like the cache-off IntervalSet scan, through arbitrary
/// block/unblock/rip-up histories; snapshots must serve concurrent
/// readers without data races; and routing results must be byte-identical
/// with the cache on or off, serially and under the parallel engine.

#include <gtest/gtest.h>

#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "engine/engine.hpp"
#include "levelb/router.hpp"
#include "tig/gap_cache.hpp"
#include "tig/snapshot.hpp"
#include "tig/track_grid.hpp"
#include "util/rng.hpp"

namespace ocr::tig {
namespace {

using geom::Interval;
using geom::Point;
using geom::Rect;

/// Restores the process-wide cache toggle on scope exit so a failing
/// assertion cannot leak a disabled cache into later tests.
struct CacheToggle {
  explicit CacheToggle(bool on) { GapCache::set_enabled(on); }
  ~CacheToggle() { GapCache::set_enabled(true); }
};

TrackGrid make_grid() {
  return TrackGrid::uniform(Rect(0, 0, 100, 100), 10, 10);
}

/// Queries one horizontal track at \p x with the cache on and off and
/// expects identical gap and crossing-index-range answers.
void expect_h_consistent(const TrackGrid& grid, int i, geom::Coord x) {
  int al = 0, ah = -1, bl = 0, bh = -1;
  GapCache::set_enabled(true);
  const std::optional<Interval> a = grid.h_free_segment_span(i, x, &al, &ah);
  GapCache::set_enabled(false);
  const std::optional<Interval> b = grid.h_free_segment_span(i, x, &bl, &bh);
  GapCache::set_enabled(true);
  ASSERT_EQ(a.has_value(), b.has_value()) << "i=" << i << " x=" << x;
  if (a.has_value()) {
    EXPECT_EQ(a->lo, b->lo) << "i=" << i << " x=" << x;
    EXPECT_EQ(a->hi, b->hi) << "i=" << i << " x=" << x;
    EXPECT_EQ(al, bl) << "i=" << i << " x=" << x;
    EXPECT_EQ(ah, bh) << "i=" << i << " x=" << x;
  }
}

void expect_v_consistent(const TrackGrid& grid, int j, geom::Coord y) {
  int al = 0, ah = -1, bl = 0, bh = -1;
  GapCache::set_enabled(true);
  const std::optional<Interval> a = grid.v_free_segment_span(j, y, &al, &ah);
  GapCache::set_enabled(false);
  const std::optional<Interval> b = grid.v_free_segment_span(j, y, &bl, &bh);
  GapCache::set_enabled(true);
  ASSERT_EQ(a.has_value(), b.has_value()) << "j=" << j << " y=" << y;
  if (a.has_value()) {
    EXPECT_EQ(a->lo, b->lo) << "j=" << j << " y=" << y;
    EXPECT_EQ(a->hi, b->hi) << "j=" << j << " y=" << y;
    EXPECT_EQ(al, bl) << "j=" << j << " y=" << y;
    EXPECT_EQ(ah, bh) << "j=" << j << " y=" << y;
  }
}

TEST(GapCache, BlockUnblockSequencesMatchCacheOff) {
  CacheToggle toggle(true);
  TrackGrid grid = make_grid();
  // A scripted history exercising every patch shape: split a gap in two,
  // trim its ends, erase it, re-open it, and merge across boundaries.
  grid.block_h(3, Interval(20, 40));            // split [0,100]
  grid.block_h(3, Interval(0, 5));              // trim the left gap's lo
  grid.block_h(3, Interval(90, 100));           // trim the right gap's hi
  grid.block_h(3, Interval(41, 60));            // extend a blocked run
  grid.block_h(3, Interval(10, 15));            // split again
  grid.unblock_h(3, Interval(20, 40));          // partial re-open + merge
  grid.block_h(3, Interval(0, 100));            // erase every gap
  grid.unblock_h(3, Interval(30, 30));          // single-point gap
  grid.unblock_h(3, Interval(0, 100));          // full rip-up
  for (geom::Coord x = 0; x <= 100; ++x) expect_h_consistent(grid, 3, x);

  grid.block_v(7, Interval(15, 85));
  grid.unblock_v(7, Interval(40, 60));
  grid.block_v(7, Interval(50, 55));
  for (geom::Coord y = 0; y <= 100; ++y) expect_v_consistent(grid, 7, y);
}

TEST(GapCache, AlreadyBlockedAndAlreadyFreeSpansAreNoOps) {
  CacheToggle toggle(true);
  TrackGrid grid = make_grid();
  grid.block_h(2, Interval(30, 70));
  (void)grid.h_free_segment(2, 0);  // populate the cache entry
  grid.block_h(2, Interval(40, 50));    // inside an already-blocked run
  grid.unblock_h(2, Interval(80, 90));  // inside an already-free gap
  for (geom::Coord x = 0; x <= 100; ++x) expect_h_consistent(grid, 2, x);
}

TEST(GapCache, RandomizedHistoryMatchesCacheOff) {
  CacheToggle toggle(true);
  util::Rng rng(2026);
  for (int trial = 0; trial < 20; ++trial) {
    TrackGrid grid = make_grid();
    for (int step = 0; step < 80; ++step) {
      const int i = static_cast<int>(rng.uniform_int(0, grid.num_h() - 1));
      const int j = static_cast<int>(rng.uniform_int(0, grid.num_v() - 1));
      const geom::Coord lo = rng.uniform_int(0, 100);
      const geom::Coord hi =
          std::min<geom::Coord>(100, lo + rng.uniform_int(0, 25));
      const Interval span(lo, hi);
      switch (rng.uniform_int(0, 3)) {
        case 0: grid.block_h(i, span); break;
        case 1: grid.unblock_h(i, span); break;
        case 2: grid.block_v(j, span); break;
        default: grid.unblock_v(j, span); break;
      }
      // Probe the mutated tracks at a handful of points each step.
      for (int probe = 0; probe < 6; ++probe) {
        const geom::Coord q = rng.uniform_int(0, 100);
        expect_h_consistent(grid, i, q);
        expect_v_consistent(grid, j, q);
      }
    }
  }
}

TEST(GapCache, WarmSnapshotServesConcurrentReaders) {
  // A warmed snapshot's gap cache is frozen: any number of threads may
  // query it concurrently with no writes anywhere. Run under TSan (the CI
  // tsan-engine job includes this binary) to prove the absence of races.
  TrackGrid grid = make_grid();
  grid.block_h(4, Interval(25, 75));
  grid.block_v(6, Interval(10, 50));
  VersionedGrid versioned(grid);
  const auto snap = versioned.snapshot();

  std::vector<std::thread> readers;
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&snap, t] {
      util::Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int k = 0; k < 2000; ++k) {
        const int i =
            static_cast<int>(rng.uniform_int(0, snap->grid.num_h() - 1));
        const int j =
            static_cast<int>(rng.uniform_int(0, snap->grid.num_v() - 1));
        const geom::Coord q = rng.uniform_int(0, 100);
        int lo = 0, hi = -1;
        (void)snap->grid.h_free_segment_span(i, q, &lo, &hi);
        (void)snap->grid.v_free_segment_span(j, q, &lo, &hi);
      }
    });
  }
  for (std::thread& r : readers) r.join();
}

/// Same random-net recipe as the engine determinism tests.
std::vector<levelb::BNet> random_nets(std::uint64_t seed, geom::Coord size,
                                      int count) {
  util::Rng rng(seed);
  std::vector<levelb::BNet> nets;
  for (int n = 0; n < count; ++n) {
    levelb::BNet net{n, {}};
    const int degree = static_cast<int>(rng.uniform_int(2, 4));
    for (int t = 0; t < degree; ++t) {
      net.terminals.push_back(
          Point{rng.uniform_int(0, size - 1), rng.uniform_int(0, size - 1)});
    }
    nets.push_back(std::move(net));
  }
  return nets;
}

TEST(GapCache, RoutingIsIdenticalWithCacheOnOrOff) {
  // The cache is a pure lookup structure: serial routing and the
  // 8-thread engine must produce byte-identical results either way.
  const std::vector<levelb::BNet> nets = random_nets(42, 500, 25);
  const auto make = [] {
    return TrackGrid::uniform(Rect(0, 0, 500, 500), 9, 11);
  };

  levelb::LevelBResult serial_on, serial_off, engine_on, engine_off;
  {
    CacheToggle toggle(true);
    TrackGrid g1 = make();
    levelb::LevelBRouter router(g1);
    serial_on = router.route(nets);
    TrackGrid g2 = make();
    engine::RoutingEngine engine(g2, engine::EngineOptions{.threads = 8});
    engine_on = engine.route(nets);
  }
  {
    CacheToggle toggle(false);
    TrackGrid g1 = make();
    levelb::LevelBRouter router(g1);
    serial_off = router.route(nets);
    TrackGrid g2 = make();
    engine::RoutingEngine engine(g2, engine::EngineOptions{.threads = 8});
    engine_off = engine.route(nets);
  }
  EXPECT_EQ(serial_on, serial_off);
  EXPECT_EQ(engine_on, serial_on);
  EXPECT_EQ(engine_off, serial_on);
}

TEST(GapCache, IncrementalPatchingAtHundredThousandTracks) {
  // The chunked cache at production scale: a 1M-dbu die at pitch 10
  // carries ~100k tracks per orientation. Sparse block/unblock histories
  // must stay consistent with the cache-off scan, entries must
  // materialize only where blocking happened, and the whole exercise
  // must run in test time (i.e. nothing iterates all 100k tracks per
  // update).
  CacheToggle toggle(true);
  TrackGrid grid =
      TrackGrid::uniform(Rect(0, 0, 1000000, 1000000), 10, 10);
  ASSERT_GE(grid.num_h(), 99999);
  ASSERT_GE(grid.num_v(), 99999);

  util::Rng rng(7);
  std::vector<std::pair<int, Interval>> placed_h, placed_v;
  for (int op = 0; op < 1500; ++op) {
    const int i = static_cast<int>(rng.uniform_int(0, grid.num_h() - 1));
    const int j = static_cast<int>(rng.uniform_int(0, grid.num_v() - 1));
    const geom::Coord x = rng.uniform_int(0, 999000);
    const geom::Coord y = rng.uniform_int(0, 999000);
    const Interval hs{x, x + rng.uniform_int(1, 900)};
    const Interval vs{y, y + rng.uniform_int(1, 900)};
    // Warm the cache entry first so the block is an incremental patch of
    // a valid entry, not a lazy rebuild.
    expect_h_consistent(grid, i, hs.lo);
    expect_v_consistent(grid, j, vs.lo);
    grid.block_h(i, hs);
    grid.block_v(j, vs);
    placed_h.emplace_back(i, hs);
    placed_v.emplace_back(j, vs);
    expect_h_consistent(grid, i, hs.lo > 0 ? hs.lo - 1 : hs.hi + 1);
    expect_v_consistent(grid, j, vs.lo > 0 ? vs.lo - 1 : vs.hi + 1);
  }
  // Rip-up half of what was placed (unblock patching), re-probing around
  // every removal.
  for (std::size_t k = 0; k < placed_h.size(); k += 2) {
    grid.unblock_h(placed_h[k].first, placed_h[k].second);
    grid.unblock_v(placed_v[k].first, placed_v[k].second);
    expect_h_consistent(grid, placed_h[k].first, placed_h[k].second.lo);
    expect_v_consistent(grid, placed_v[k].first, placed_v[k].second.lo);
  }
  // Sparsity: 1500 blocks on 200k tracks must leave the vast majority of
  // chunks unmaterialized (64 tracks per chunk, ~3.1k chunk slots).
  EXPECT_LE(grid.blocked_chunks(), 2 * 1500u);
  EXPECT_GT(grid.grid_bytes(), 0u);
  // Never-touched tracks answer through the universe fast path.
  expect_h_consistent(grid, grid.num_h() / 2 + 1, 500000);
}

}  // namespace
}  // namespace ocr::tig

#pragma once
/// Shared helpers for channel-router tests: random problem generation.

#include <vector>

#include "channel/problem.hpp"
#include "util/rng.hpp"

namespace ocr::channel::testing {

/// Generates a random channel problem with \p num_nets nets over
/// \p num_columns columns; every net receives 2..max_pins pins on random
/// boundaries/columns (at most one pin per boundary position).
inline ChannelProblem random_problem(util::Rng& rng, int num_columns,
                                     int num_nets, int max_pins = 4) {
  ChannelProblem p;
  p.top.assign(static_cast<std::size_t>(num_columns), 0);
  p.bot.assign(static_cast<std::size_t>(num_columns), 0);
  for (int net = 1; net <= num_nets; ++net) {
    const int pins = static_cast<int>(rng.uniform_int(2, max_pins));
    int placed = 0;
    int guard = 0;
    while (placed < pins && guard++ < 200) {
      const int c = static_cast<int>(rng.uniform_int(0, num_columns - 1));
      auto& side = rng.chance(0.5) ? p.top : p.bot;
      if (side[static_cast<std::size_t>(c)] == 0) {
        side[static_cast<std::size_t>(c)] = net;
        ++placed;
      }
    }
    // Nets that could not get 2 pins are erased (degenerate).
    if (placed < 2) {
      for (auto& v : p.top) {
        if (v == net) v = 0;
      }
      for (auto& v : p.bot) {
        if (v == net) v = 0;
      }
    }
  }
  return p;
}

}  // namespace ocr::channel::testing

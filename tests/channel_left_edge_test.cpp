#include <gtest/gtest.h>

#include "channel/left_edge.hpp"
#include "channel_test_util.hpp"
#include "util/rng.hpp"

namespace ocr::channel {
namespace {

TEST(LeftEdge, EmptyChannel) {
  ChannelProblem p;
  p.top = {0, 0, 0};
  p.bot = {0, 0, 0};
  const auto route = route_left_edge(p);
  EXPECT_TRUE(route.success);
  EXPECT_EQ(route.num_tracks, 0);
}

TEST(LeftEdge, SingleNetStraightThrough) {
  ChannelProblem p;
  p.top = {0, 1, 0};
  p.bot = {0, 1, 0};
  const auto route = route_left_edge(p);
  ASSERT_TRUE(route.success);
  EXPECT_EQ(route.num_tracks, 0);  // vertical only, no track needed
  EXPECT_TRUE(validate_route(p, route).empty());
}

TEST(LeftEdge, SingleNetUsesOneTrack) {
  ChannelProblem p;
  p.top = {1, 0, 0, 0};
  p.bot = {0, 0, 0, 1};
  const auto route = route_left_edge(p);
  ASSERT_TRUE(route.success);
  EXPECT_EQ(route.num_tracks, 1);
  EXPECT_TRUE(validate_route(p, route).empty());
}

TEST(LeftEdge, DisjointNetsShareTrack) {
  ChannelProblem p;
  p.top = {1, 1, 0, 2, 2};
  p.bot = {0, 0, 0, 0, 0};
  const auto route = route_left_edge(p);
  ASSERT_TRUE(route.success);
  EXPECT_EQ(route.num_tracks, 1);
  EXPECT_TRUE(validate_route(p, route).empty());
}

TEST(LeftEdge, AbuttingNetsCannotShareTrack) {
  // Net 2's left edge equals net 1's right edge: they would collide at the
  // shared column, so two tracks are required.
  ChannelProblem p;
  p.top = {1, 1, 2, 2};
  p.bot = {0, 0, 1, 0};  // force overlap at column 2
  const auto route = route_left_edge(p);
  ASSERT_TRUE(route.success);
  EXPECT_GE(route.num_tracks, 2);
  EXPECT_TRUE(validate_route(p, route).empty());
}

TEST(LeftEdge, RespectsVerticalConstraints) {
  // Column 1: net 2 on top, net 1 on bottom -> 2 above 1.
  ChannelProblem p;
  p.top = {1, 2, 0, 2};
  p.bot = {0, 1, 1, 0};
  const auto route = route_left_edge(p, LeftEdgeOptions{false});
  ASSERT_TRUE(route.success);
  EXPECT_TRUE(validate_route(p, route).empty());
  int track1 = 0;
  int track2 = 0;
  for (const HSeg& h : route.hsegs) {
    if (h.net == 1) track1 = h.track;
    if (h.net == 2) track2 = h.track;
  }
  EXPECT_LT(track2, track1);  // smaller index = nearer the top
}

TEST(LeftEdge, CycleFailsWithoutDoglegs) {
  // Column 0 forces 1 above 2; column 2 forces 2 above 1.
  ChannelProblem p;
  p.top = {1, 0, 2};
  p.bot = {2, 1, 1};
  const auto route = route_left_edge(p, LeftEdgeOptions{false});
  EXPECT_FALSE(route.success);
  EXPECT_FALSE(route.failure_reason.empty());
}

TEST(LeftEdge, DoglegBreaksCycle) {
  // Same instance: splitting net 1 at its column-1 pin lets its two pieces
  // sit on opposite sides of net 2.
  ChannelProblem p;
  p.top = {1, 0, 2};
  p.bot = {2, 1, 1};
  const auto route = route_left_edge(p, LeftEdgeOptions{true});
  ASSERT_TRUE(route.success) << route.failure_reason;
  EXPECT_TRUE(validate_route(p, route).empty());
}

TEST(LeftEdge, IrreducibleSwapCycleStillFails) {
  // Adjacent-column swap between two 2-pin nets: no pin column exists
  // where a dogleg could split either net, so the cycle is irreducible
  // for the left-edge family (the greedy router handles it instead).
  ChannelProblem p;
  p.top = {1, 2};
  p.bot = {2, 1};
  const auto route = route_left_edge(p, LeftEdgeOptions{true});
  EXPECT_FALSE(route.success);
}

TEST(LeftEdge, DoglegReducesTracksOnClassicExample) {
  // A net with many pins split at internal columns can weave between
  // tracks; without doglegs it needs one whole track for its full span.
  ChannelProblem p;
  p.top = {1, 0, 2, 0, 3, 0};
  p.bot = {0, 1, 0, 2, 0, 3};
  const auto dogleg = route_left_edge(p, LeftEdgeOptions{true});
  const auto plain = route_left_edge(p, LeftEdgeOptions{false});
  ASSERT_TRUE(dogleg.success);
  ASSERT_TRUE(plain.success);
  EXPECT_LE(dogleg.num_tracks, plain.num_tracks);
  EXPECT_TRUE(validate_route(p, dogleg).empty());
  EXPECT_TRUE(validate_route(p, plain).empty());
}

TEST(LeftEdge, TracksNeverBelowDensity) {
  util::Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    const auto p = testing::random_problem(rng, 30, 8);
    const auto route = route_left_edge(p);
    if (!route.success) continue;  // rare irreducible cycles are fine here
    EXPECT_GE(route.num_tracks, channel_density(p)) << "trial " << trial;
  }
}

TEST(LeftEdgeProperty, RandomProblemsValidate) {
  util::Rng rng(41);
  int routed = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const auto p = testing::random_problem(
        rng, static_cast<int>(rng.uniform_int(6, 40)),
        static_cast<int>(rng.uniform_int(1, 12)));
    const auto route = route_left_edge(p);
    if (!route.success) continue;
    ++routed;
    const auto problems = validate_route(p, route);
    EXPECT_TRUE(problems.empty())
        << "trial " << trial << ": " << problems.front();
  }
  EXPECT_GT(routed, 30);  // doglegs should complete most instances
}

}  // namespace
}  // namespace ocr::channel

#include <gtest/gtest.h>

#include <cstdio>

#include "bench_data/synthetic.hpp"
#include "flow/flow.hpp"
#include "netlist/stats.hpp"
#include "partition/partition.hpp"
#include "report/tables.hpp"
#include "viz/svg.hpp"

namespace ocr {
namespace {

flow::FlowMetrics fake_metrics(const char* example, geom::Coord area,
                               long long wl, int vias) {
  flow::FlowMetrics m;
  m.example_name = example;
  m.layout_area = area;
  m.wire_length = wl;
  m.vias = vias;
  return m;
}

TEST(Report, Table1Renders) {
  netlist::LayoutStats stats;
  stats.name = "ami33";
  stats.num_cells = 33;
  stats.num_nets = 123;
  stats.num_pins = 480;
  stats.avg_pins_per_net = 3.9;
  netlist::SubsetStats level_a;
  level_a.num_nets = 4;
  level_a.avg_pins_per_net = 44.25;
  const std::string out =
      report::render_table1({report::Table1Row{stats, level_a}});
  EXPECT_NE(out.find("ami33"), std::string::npos);
  EXPECT_NE(out.find("44.25"), std::string::npos);
  EXPECT_NE(out.find("Table 1"), std::string::npos);
}

TEST(Report, Table2ComputesReductions) {
  report::Table2Row row;
  row.baseline = fake_metrics("x", 1000, 2000, 100);
  row.proposed = fake_metrics("x", 750, 1500, 80);
  const std::string out = report::render_table2({row});
  EXPECT_NE(out.find("25.0"), std::string::npos);  // area
  EXPECT_NE(out.find("20.0"), std::string::npos);  // vias
}

TEST(Report, Table3ShowsAreas) {
  report::Table3Row row;
  row.fifty_percent_model = fake_metrics("ami33", 2261480, 0, 0);
  row.four_layer_channel = fake_metrics("ami33", 2300000, 0, 0);
  row.over_cell = fake_metrics("ami33", 1874880, 0, 0);
  const std::string out = report::render_table3({row});
  EXPECT_NE(out.find("2,261,480"), std::string::npos);
  EXPECT_NE(out.find("1,874,880"), std::string::npos);
}

TEST(Viz, LayoutSvgWellFormed) {
  const auto ml = bench_data::generate_macro_layout(
      bench_data::random_spec(5, 0.3));
  const auto layout =
      ml.assemble(std::vector<geom::Coord>(ml.num_channels(), 20));
  const std::string svg = viz::render_layout(layout);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One rect per cell at least.
  std::size_t rects = 0;
  for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1)) {
    ++rects;
  }
  EXPECT_GT(rects, layout.cells().size());
}

TEST(Viz, LevelBRoutingSvgShowsWires) {
  const auto ml = bench_data::generate_macro_layout(
      bench_data::random_spec(5, 0.3));
  const auto assembled =
      ml.assemble(std::vector<geom::Coord>(ml.num_channels(), 0));
  flow::FlowArtifacts artifacts;
  const auto metrics = flow::run_over_cell_flow(
      ml, partition::partition_by_class(assembled), flow::FlowOptions{},
      &artifacts);
  ASSERT_TRUE(metrics.success);
  const std::string svg = viz::render_levelb_routing(artifacts);
  EXPECT_NE(svg.find("<line"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Viz, WriteFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ocr_viz_test.svg";
  ASSERT_TRUE(viz::write_file(path, "<svg></svg>\n"));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buffer[32] = {};
  const std::size_t n = std::fread(buffer, 1, sizeof(buffer) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buffer, n), "<svg></svg>\n");
}

}  // namespace
}  // namespace ocr

#pragma once
/// \file json_test_util.hpp
/// \brief Minimal recursive-descent JSON validator for tests that check
/// emitted JSON (trace files, Chrome trace exports, manifests) without a
/// third-party parser. Validates structure only; on success the walker
/// callbacks can extract what a test needs.

#include <cctype>
#include <string>

namespace ocr::test {

/// Validates that \p text is one complete JSON value (with optional
/// trailing whitespace). Returns true on success; on failure \p error
/// holds the byte offset and a short reason.
class JsonValidator {
 public:
  static bool valid(const std::string& text, std::string* error = nullptr) {
    JsonValidator v(text);
    v.skip_ws();
    if (!v.value()) {
      if (error != nullptr) {
        *error = "invalid JSON at byte " + std::to_string(v.pos_) + ": " +
                 v.reason_;
      }
      return false;
    }
    v.skip_ws();
    if (v.pos_ != text.size()) {
      if (error != nullptr) {
        *error = "trailing garbage at byte " + std::to_string(v.pos_);
      }
      return false;
    }
    return true;
  }

 private:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool fail(const char* reason) {
    reason_ = reason;
    return false;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (!eat(*p)) return fail("bad literal");
    }
    return true;
  }

  bool object() {
    if (!eat('{')) return fail("expected '{'");
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return fail("expected member name");
      skip_ws();
      if (!eat(':')) return fail("expected ':'");
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool array() {
    if (!eat('[')) return fail("expected '['");
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool string() {
    if (!eat('"')) return fail("expected '\"'");
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character");
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("dangling escape");
        const char e = text_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return fail("bad \\u escape");
            }
            ++pos_;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape");
        }
      }
    }
    return fail("unterminated string");
  }

  bool number() {
    const std::size_t start = pos_;
    eat('-');
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("expected value");
    }
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (eat('.')) {
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("bad fraction");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("bad exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string reason_ = "unknown";
};

}  // namespace ocr::test

#include <gtest/gtest.h>

#include "levelb/figure1.hpp"
#include "levelb/path_finder.hpp"
#include "util/rng.hpp"

namespace ocr::levelb {
namespace {

using geom::Interval;
using geom::Point;
using geom::Rect;

tig::TrackGrid open_grid() {
  // 8x8 uniform grid, tracks at 5, 15, ..., 75.
  return tig::TrackGrid::uniform(Rect(0, 0, 80, 80), 10, 10);
}

CostContext plain_ctx(const tig::TrackGrid& grid) {
  return make_cost_context(grid, nullptr);
}

TEST(PathFinder, StraightHorizontal) {
  const auto grid = open_grid();
  const PathFinder finder(grid);
  const auto r = finder.connect(Point{5, 25}, Point{75, 25},
                                plain_ctx(grid));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.corners, 0);
  EXPECT_EQ(r.path.length(), 70);
  EXPECT_EQ(r.path.points.size(), 2u);
}

TEST(PathFinder, StraightVertical) {
  const auto grid = open_grid();
  const PathFinder finder(grid);
  const auto r = finder.connect(Point{35, 5}, Point{35, 75},
                                plain_ctx(grid));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.corners, 0);
  EXPECT_EQ(r.path.length(), 70);
}

TEST(PathFinder, LShapeOneCorner) {
  const auto grid = open_grid();
  const PathFinder finder(grid);
  const auto r = finder.connect(Point{5, 5}, Point{75, 75},
                                plain_ctx(grid));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.corners, 1);
  EXPECT_EQ(r.path.length(), 140);  // Manhattan-optimal
  EXPECT_TRUE(validate_path(grid, r.path, Point{5, 5}, Point{75, 75})
                  .empty());
}

TEST(PathFinder, IdenticalEndpoints) {
  const auto grid = open_grid();
  const PathFinder finder(grid);
  const auto r = finder.connect(Point{5, 5}, Point{5, 5}, plain_ctx(grid));
  EXPECT_TRUE(r.found);
  EXPECT_TRUE(r.path.empty());
}

TEST(PathFinder, DetoursAroundBlockedStraight) {
  auto grid = open_grid();
  // Block the direct horizontal track between the terminals.
  grid.block_h(2, Interval(30, 50));  // y=25
  const PathFinder finder(grid);
  const auto r = finder.connect(Point{5, 25}, Point{75, 25},
                                plain_ctx(grid));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.corners, 2);  // up/down and back
  EXPECT_GT(r.path.length(), 70);
  EXPECT_TRUE(validate_path(grid, r.path, Point{5, 25}, Point{75, 25})
                  .empty());
}

TEST(PathFinder, PathAvoidsObstacleRegion) {
  auto grid = open_grid();
  // A solid block in the middle of the die on both layers.
  const Rect obstacle(25, 25, 55, 55);
  grid.block_region_h(obstacle);
  grid.block_region_v(obstacle);
  const PathFinder finder(grid);
  const auto r = finder.connect(Point{5, 45}, Point{75, 45},
                                plain_ctx(grid));
  ASSERT_TRUE(r.found);
  // No leg may cross the obstacle interior.
  for (std::size_t leg = 0; leg + 1 < r.path.points.size(); ++leg) {
    const Point& p = r.path.points[leg];
    const Point& q = r.path.points[leg + 1];
    const Rect leg_box = Rect::from_corners(p, q);
    EXPECT_FALSE(leg_box.interior_overlaps(obstacle))
        << "leg " << leg << " crosses the obstacle";
    // Also endpoints: crossings inside the obstacle would be blocked.
    EXPECT_FALSE(obstacle.contains(p) && obstacle.contains(q) &&
                 p != q);
  }
}

TEST(PathFinder, ReportsUnreachable) {
  auto grid = open_grid();
  // Wall off the right half on both layers.
  const Rect wall(38, 0, 42, 80);
  grid.block_region_h(wall);
  for (int j = 0; j < grid.num_v(); ++j) {
    if (grid.v_x(j) >= 38 && grid.v_x(j) <= 42) {
      grid.block_v(j, Interval(0, 80));
    }
  }
  // The wall blocks every horizontal track on x in [38,42]; no vertical
  // track can bypass x=38..42 because wires must ride tracks.
  const PathFinder finder(grid);
  const auto r = finder.connect(Point{5, 25}, Point{75, 25},
                                plain_ctx(grid));
  EXPECT_FALSE(r.found);
}

TEST(PathFinder, WindowGrowsWhenNeeded) {
  auto grid = open_grid();
  // Terminals on the same row; block a tall region forcing a detour far
  // outside the initial window.
  for (int i = 0; i < grid.num_h(); ++i) {
    if (grid.h_y(i) <= 55) grid.block_h(i, Interval(30, 50));
  }
  for (int j = 0; j < grid.num_v(); ++j) {
    if (grid.v_x(j) >= 30 && grid.v_x(j) <= 50) {
      grid.block_v(j, Interval(0, 55));
    }
  }
  PathFinder::Options opts;
  opts.window_margin = 1;
  const PathFinder finder(grid, opts);
  const auto r = finder.connect(Point{5, 5}, Point{75, 5}, plain_ctx(grid));
  ASSERT_TRUE(r.found);
  EXPECT_GT(r.stats.window_growths, 0);
  EXPECT_TRUE(validate_path(grid, r.path, Point{5, 5}, Point{75, 5})
                  .empty());
}

TEST(PathFinder, MinimumCornersPreferredOverLength) {
  auto grid = open_grid();
  // Make the 1-corner L paths impossible; a 2-corner detour remains. The
  // finder must never return a 3+-corner path even if shorter in length.
  grid.block_h(0, Interval(70, 80));   // corner at (75, 5)
  grid.block_v(0, Interval(70, 80));   // corner at (5, 75)
  const PathFinder finder(grid);
  const auto r = finder.connect(Point{5, 5}, Point{75, 75},
                                plain_ctx(grid));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.corners, 2);
  EXPECT_EQ(r.path.length(), 140);  // still Manhattan-optimal via Z-shape
}

// ---- Figure 1 / Figure 2 reproduction --------------------------------

TEST(Figure1, ReproducesPaperOutcome) {
  const Figure1Instance fig = make_figure1_instance();
  PathFinder::Options opts;
  opts.keep_trees = true;
  const PathFinder finder(fig.grid, opts);
  const auto ctx = make_cost_context(fig.grid, nullptr);
  const auto r = finder.connect(fig.b1, fig.b2, ctx);
  ASSERT_TRUE(r.found);
  // The paper: the (v2, h4, v6) path with a single corner wins.
  EXPECT_EQ(r.corners, 1);
  ASSERT_EQ(r.path.points.size(), 3u);
  EXPECT_EQ(r.path.points[0], fig.b1);
  EXPECT_EQ(r.path.points[1], (Point{20, 40}));  // corner on (v2, h4)
  EXPECT_EQ(r.path.points[2], fig.b2);
}

TEST(Figure1, FindsAllThreeCandidatePaths) {
  // Paper: "three possible paths can be identified — one path (v2,h4,v6)
  // from the MBFS that started from vertex v2, and two paths
  // (h2,v3,h4,v6) and (h2,v5,h4,v6) from the MBFS that started from h2."
  const Figure1Instance fig = make_figure1_instance();
  const PathFinder finder(fig.grid);
  const auto ctx = make_cost_context(fig.grid, nullptr);
  const auto r = finder.connect(fig.b1, fig.b2, ctx);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.stats.candidates, 3);
}

TEST(Figure1, TreeFromV2FindsOnePath) {
  const Figure1Instance fig = make_figure1_instance();
  PathFinder::Options opts;
  opts.keep_trees = true;
  const PathFinder finder(fig.grid, opts);
  const auto ctx = make_cost_context(fig.grid, nullptr);
  const auto r = finder.connect(fig.b1, fig.b2, ctx);
  ASSERT_TRUE(r.found);
  // Tree rooted at v2 (vertical pass): root is v2.
  ASSERT_FALSE(r.tree_v.nodes.empty());
  EXPECT_EQ(r.tree_v.nodes[0].track.orient, geom::Orientation::kVertical);
  EXPECT_EQ(r.tree_v.nodes[0].track.index, 1);  // v2 is index 1
}

TEST(Figure1, DirectH2V6CompletionIsBlocked) {
  // Net C's wire on v6 must prevent the (h2, v6) one-corner path.
  const Figure1Instance fig = make_figure1_instance();
  EXPECT_FALSE(fig.grid.v_is_free(5, Interval(20, 40)));
  // And h4 is blocked between v1 and v2 (net A).
  EXPECT_FALSE(fig.grid.h_is_free(3, Interval(10, 20)));
  // Obstacle O1 blocks v4 at h2's y.
  EXPECT_FALSE(fig.grid.v_is_free(3, Interval(20, 20)));
}

TEST(Figure1, TreePrintingMentionsTracks) {
  const Figure1Instance fig = make_figure1_instance();
  PathFinder::Options opts;
  opts.keep_trees = true;
  const PathFinder finder(fig.grid, opts);
  const auto ctx = make_cost_context(fig.grid, nullptr);
  const auto r = finder.connect(fig.b1, fig.b2, ctx);
  const std::string tree = r.tree_h.to_string();
  EXPECT_NE(tree.find("h2"), std::string::npos);
  EXPECT_NE(tree.find("v3"), std::string::npos);
  EXPECT_NE(tree.find("v5"), std::string::npos);
}

// ---- property tests ----------------------------------------------------

TEST(PathFinderProperty, RandomObstaclesValidPaths) {
  util::Rng rng(2025);
  for (int trial = 0; trial < 40; ++trial) {
    auto grid = tig::TrackGrid::uniform(Rect(0, 0, 200, 200), 10, 10);
    // Scatter obstacles.
    const int blocks = static_cast<int>(rng.uniform_int(0, 15));
    for (int k = 0; k < blocks; ++k) {
      const geom::Coord x = rng.uniform_int(0, 180);
      const geom::Coord y = rng.uniform_int(0, 180);
      const Rect r(x, y, x + rng.uniform_int(5, 40),
                   y + rng.uniform_int(5, 40));
      grid.block_region_h(r);
      grid.block_region_v(r);
    }
    const Point a = grid.crossing(
        static_cast<int>(rng.uniform_int(0, grid.num_h() - 1)),
        static_cast<int>(rng.uniform_int(0, grid.num_v() - 1)));
    const Point b = grid.crossing(
        static_cast<int>(rng.uniform_int(0, grid.num_h() - 1)),
        static_cast<int>(rng.uniform_int(0, grid.num_v() - 1)));
    if (a == b) continue;
    const PathFinder finder(grid);
    const auto ctx = make_cost_context(grid, nullptr);
    const auto r = finder.connect(a, b, ctx);
    if (!r.found) continue;  // walled off is legitimate
    const auto problems = validate_path(grid, r.path, a, b);
    ASSERT_TRUE(problems.empty())
        << "trial " << trial << ": " << problems.front();
    // Every leg must be free in the grid.
    for (std::size_t leg = 0; leg + 1 < r.path.points.size(); ++leg) {
      const Point& p = r.path.points[leg];
      const Point& q = r.path.points[leg + 1];
      const auto& t = r.path.tracks[leg];
      if (t.orient == geom::Orientation::kHorizontal) {
        ASSERT_TRUE(grid.h_is_free(
            t.index, Interval(std::min(p.x, q.x), std::max(p.x, q.x))))
            << "trial " << trial;
      } else {
        ASSERT_TRUE(grid.v_is_free(
            t.index, Interval(std::min(p.y, q.y), std::max(p.y, q.y))))
            << "trial " << trial;
      }
    }
  }
}

TEST(PathFinderProperty, LengthAtLeastManhattan) {
  util::Rng rng(303);
  const auto grid = tig::TrackGrid::uniform(Rect(0, 0, 300, 300), 10, 10);
  const PathFinder finder(grid);
  const auto ctx = make_cost_context(grid, nullptr);
  for (int trial = 0; trial < 50; ++trial) {
    const Point a = grid.crossing(
        static_cast<int>(rng.uniform_int(0, grid.num_h() - 1)),
        static_cast<int>(rng.uniform_int(0, grid.num_v() - 1)));
    const Point b = grid.crossing(
        static_cast<int>(rng.uniform_int(0, grid.num_h() - 1)),
        static_cast<int>(rng.uniform_int(0, grid.num_v() - 1)));
    if (a == b) continue;
    const auto r = finder.connect(a, b, ctx);
    ASSERT_TRUE(r.found);
    // On an empty grid the minimum-corner path is Manhattan-optimal.
    EXPECT_EQ(r.path.length(), geom::manhattan(a, b)) << "trial " << trial;
    EXPECT_LE(r.corners, 1);
  }
}

}  // namespace
}  // namespace ocr::levelb

/// \file engine_stress_test.cpp
/// \brief Threaded stress for the engine: many workers, tight lookahead,
/// repeated runs. Primarily a ThreadSanitizer target (the CI TSan job
/// runs exactly this binary); the assertions double as a determinism
/// check under contention.

#include <gtest/gtest.h>

#include <cstdlib>

#include "engine/engine.hpp"
#include "levelb/router.hpp"
#include "util/rng.hpp"

namespace ocr::engine {
namespace {

using geom::Point;
using geom::Rect;
using levelb::BNet;

/// Worker count for the contended cases: OCR_STRESS_THREADS overrides the
/// default (the CI TSan job runs the binary once per matrix entry).
int stress_threads(int fallback) {
  const char* env = std::getenv("OCR_STRESS_THREADS");
  if (env != nullptr) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) return parsed;
  }
  return fallback;
}

std::vector<BNet> dense_nets(std::uint64_t seed, geom::Coord size,
                             int count) {
  util::Rng rng(seed);
  std::vector<BNet> nets;
  for (int n = 0; n < count; ++n) {
    BNet net{n, {}};
    const int degree = static_cast<int>(rng.uniform_int(2, 3));
    for (int t = 0; t < degree; ++t) {
      net.terminals.push_back(
          Point{rng.uniform_int(0, size - 1), rng.uniform_int(0, size - 1)});
    }
    net.sensitive = n % 7 == 3;
    nets.push_back(std::move(net));
  }
  return nets;
}

TEST(EngineStress, RepeatedContendedRunsStayDeterministic) {
  // Small grid + many nets = dense occupancy = frequent speculation
  // conflicts. Every run must still reproduce the serial answer.
  const std::vector<BNet> nets = dense_nets(21, 260, 40);
  tig::TrackGrid serial_grid =
      tig::TrackGrid::uniform(Rect(0, 0, 260, 260), 9, 11);
  levelb::LevelBRouter serial(serial_grid);
  const levelb::LevelBResult expected = serial.route(nets);

  for (int iteration = 0; iteration < 3; ++iteration) {
    tig::TrackGrid grid =
        tig::TrackGrid::uniform(Rect(0, 0, 260, 260), 9, 11);
    EngineOptions options;
    options.threads = stress_threads(8);
    options.lookahead = 3;  // tight window keeps commits racing searches
    RoutingEngine engine(grid, options);
    EXPECT_EQ(engine.route(nets), expected) << "iteration " << iteration;
    const EngineStats& stats = engine.stats();
    EXPECT_EQ(stats.speculative_commits + stats.speculation_aborts,
              static_cast<long long>(nets.size()));
  }
}

TEST(EngineStress, WideLookaheadManyThreads) {
  const std::vector<BNet> nets = dense_nets(33, 400, 30);
  tig::TrackGrid serial_grid =
      tig::TrackGrid::uniform(Rect(0, 0, 400, 400), 9, 11);
  levelb::LevelBRouter serial(serial_grid);
  const levelb::LevelBResult expected = serial.route(nets);

  tig::TrackGrid grid = tig::TrackGrid::uniform(Rect(0, 0, 400, 400), 9, 11);
  EngineOptions options;
  options.threads = stress_threads(8);
  options.lookahead = 64;  // deep speculation: most nets race many commits
  RoutingEngine engine(grid, options);
  EXPECT_EQ(engine.route(nets), expected);
}

TEST(EngineStress, SixteenWorkersWithOverlaysMatchSerial) {
  // More workers than positions in the adaptive window: overlays rebase
  // and catch up from the commit log constantly, and the per-slot atomics
  // see maximum publish/take concurrency.
  const std::vector<BNet> nets = dense_nets(55, 320, 48);
  tig::TrackGrid serial_grid =
      tig::TrackGrid::uniform(Rect(0, 0, 320, 320), 9, 11);
  levelb::LevelBRouter serial(serial_grid);
  const levelb::LevelBResult expected = serial.route(nets);

  tig::TrackGrid grid = tig::TrackGrid::uniform(Rect(0, 0, 320, 320), 9, 11);
  EngineOptions options;
  options.threads = stress_threads(16);
  RoutingEngine engine(grid, options);
  EXPECT_EQ(engine.route(nets), expected);
  const EngineStats& stats = engine.stats();
  // Incremental publication: far fewer grid copies than commits.
  EXPECT_LT(stats.grid_copies, static_cast<long long>(nets.size()));
}

}  // namespace
}  // namespace ocr::engine

/// \file arena_test.cpp
/// \brief Arena allocator contract: bump allocation with O(1) epoch-
/// advancing reset, block retention across resets (steady state performs
/// no heap calls), grow_array copy semantics, and the high-water /
/// reserved accounting the levelb.arena_* gauges report.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/arena.hpp"

namespace ocr::util {
namespace {

TEST(Arena, AllocatesDistinctWritableStorage) {
  Arena arena;
  int* a = arena.alloc_array<int>(10);
  int* b = arena.alloc_array<int>(10);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  for (int i = 0; i < 10; ++i) {
    a[i] = i;
    b[i] = 100 + i;
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a[i], i);
    EXPECT_EQ(b[i], 100 + i);
  }
  EXPECT_GE(arena.used_bytes(), 20 * sizeof(int));
}

TEST(Arena, ZeroElementsIsNull) {
  Arena arena;
  EXPECT_EQ(arena.alloc_array<int>(0), nullptr);
  EXPECT_EQ(arena.used_bytes(), 0u);
}

TEST(Arena, AlignmentIsRespected) {
  Arena arena;
  arena.alloc_array<char>(1);  // misalign the cursor
  struct alignas(16) Wide {
    double a, b;
  };
  Wide* w = arena.alloc_array<Wide>(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w) % 16, 0u);
  arena.alloc_array<char>(3);
  std::uint64_t* q = arena.alloc_array<std::uint64_t>(1);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % alignof(std::uint64_t), 0u);
}

TEST(Arena, GrowArrayCopiesLiveElements) {
  Arena arena;
  int* small = arena.alloc_array<int>(4);
  for (int i = 0; i < 4; ++i) small[i] = i * i;
  int* big = arena.grow_array(small, 4, 16);
  EXPECT_NE(big, small);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(big[i], i * i);
  // Growing from nothing is a plain allocation.
  int* fresh = arena.grow_array<int>(nullptr, 0, 8);
  ASSERT_NE(fresh, nullptr);
  fresh[7] = 1;
}

TEST(Arena, ResetAdvancesEpochAndReleasesEverything) {
  Arena arena;
  EXPECT_EQ(arena.epoch(), 1u);
  arena.alloc_array<int>(100);
  const std::size_t used = arena.used_bytes();
  EXPECT_GT(used, 0u);
  arena.reset();
  EXPECT_EQ(arena.epoch(), 2u);
  EXPECT_EQ(arena.used_bytes(), 0u);
  // High water survives the reset; reserved blocks are retained.
  EXPECT_GE(arena.high_water_bytes(), used);
  EXPECT_GT(arena.reserved_bytes(), 0u);
  arena.reset();
  EXPECT_EQ(arena.epoch(), 3u);
}

TEST(Arena, BlocksAreReusedAfterReset) {
  Arena arena(1024);
  arena.alloc_array<std::byte>(512);
  const std::size_t reserved = arena.reserved_bytes();
  for (int round = 0; round < 50; ++round) {
    arena.reset();
    arena.alloc_array<std::byte>(512);
    // Steady state: the same block serves every round, nothing grows.
    EXPECT_EQ(arena.reserved_bytes(), reserved);
  }
}

TEST(Arena, OversizedAllocationGetsDedicatedBlock) {
  Arena arena(256);
  std::byte* big = arena.alloc_array<std::byte>(10000);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xab, 10000);
  EXPECT_GE(arena.reserved_bytes(), 10000u);
  // A later small allocation still succeeds (new or existing block).
  int* small = arena.alloc_array<int>(4);
  ASSERT_NE(small, nullptr);
  small[3] = 7;
}

TEST(Arena, HighWaterTracksLargestConnect) {
  Arena arena;
  arena.alloc_array<std::byte>(100);
  arena.reset();
  arena.alloc_array<std::byte>(5000);
  arena.reset();
  arena.alloc_array<std::byte>(200);
  EXPECT_GE(arena.high_water_bytes(), 5000u);
  EXPECT_LT(arena.high_water_bytes(), 6000u);
}

TEST(Arena, SpansMultipleBlocks) {
  Arena arena(128);
  std::vector<int*> ptrs;
  for (int i = 0; i < 100; ++i) {
    int* p = arena.alloc_array<int>(8);
    p[0] = i;
    ptrs.push_back(p);
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ptrs[i][0], i);
  EXPECT_GE(arena.reserved_bytes(), 100 * 8 * sizeof(int));
}

}  // namespace
}  // namespace ocr::util

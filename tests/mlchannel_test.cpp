#include <gtest/gtest.h>

#include "channel/left_edge.hpp"
#include "channel_test_util.hpp"
#include "mlchannel/multilayer.hpp"
#include "util/rng.hpp"

namespace ocr::mlchannel {
namespace {

using channel::ChannelProblem;

TEST(MultiLayer, FiftyPercentModel) {
  EXPECT_EQ(fifty_percent_track_model(0), 0);
  EXPECT_EQ(fifty_percent_track_model(1), 1);
  EXPECT_EQ(fifty_percent_track_model(7), 4);
  EXPECT_EQ(fifty_percent_track_model(10), 5);
}

TEST(MultiLayer, EmptyChannel) {
  ChannelProblem p;
  p.top = {0, 0};
  p.bot = {0, 0};
  const auto result = route_multilayer(p);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.max_group_tracks, 0);
}

TEST(MultiLayer, PartitionCoversEveryNet) {
  util::Rng rng(17);
  const auto p = channel::testing::random_problem(rng, 30, 10);
  const auto result = route_multilayer(p);
  ASSERT_TRUE(result.success);
  const auto spans = channel::net_spans(p);
  for (const auto& span : spans) {
    if (!span.present()) continue;
    const int group = result.net_group[static_cast<std::size_t>(span.net)];
    EXPECT_GE(group, 0);
    EXPECT_LT(group, 2);
  }
}

TEST(MultiLayer, GroupsRouteTheirOwnNetsOnly) {
  util::Rng rng(19);
  const auto p = channel::testing::random_problem(rng, 25, 8);
  const auto result = route_multilayer(p);
  ASSERT_TRUE(result.success);
  for (std::size_t g = 0; g < result.group_routes.size(); ++g) {
    for (const channel::HSeg& h : result.group_routes[g].hsegs) {
      EXPECT_EQ(result.net_group[static_cast<std::size_t>(h.net)],
                static_cast<int>(g));
    }
  }
}

TEST(MultiLayer, ReducesTracksVsTwoLayer) {
  // On dense instances the two-group router should need fewer tracks per
  // layer pair than the two-layer router needs in total.
  util::Rng rng(23);
  int improved = 0;
  int comparisons = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto p = channel::testing::random_problem(rng, 40, 14);
    const auto two = channel::route_greedy(p);
    const auto multi = route_multilayer(p);
    if (!two.success || !multi.success) continue;
    ++comparisons;
    if (multi.max_group_tracks < two.num_tracks) ++improved;
    EXPECT_LE(multi.max_group_tracks, two.num_tracks);
  }
  ASSERT_GT(comparisons, 10);
  EXPECT_GT(improved, comparisons / 2);
}

TEST(MultiLayer, ChannelHeightPaysUpperLayerPitch) {
  // The paper's central caveat: equal tracks on a coarser layer pair cost
  // more height.
  geom::DesignRules rules;
  MultiLayerChannelResult result;
  result.group_routes.resize(2);
  result.group_routes[0].num_tracks = 4;
  result.group_routes[1].num_tracks = 4;
  const geom::Coord height = result.channel_height(rules);
  const geom::Coord pitch34 =
      rules.channel_pitch(geom::Layer::kMetal3, geom::Layer::kMetal4);
  EXPECT_EQ(height, 4 * pitch34);  // the coarser pair dominates
}

TEST(MultiLayer, SubRoutesValidate) {
  util::Rng rng(29);
  for (int trial = 0; trial < 15; ++trial) {
    const auto p = channel::testing::random_problem(rng, 30, 10);
    const auto result = route_multilayer(p);
    if (!result.success) continue;
    // Rebuild each group's subproblem and validate its route against it.
    for (std::size_t g = 0; g < result.group_routes.size(); ++g) {
      ChannelProblem sub;
      sub.top.assign(p.top.size(), 0);
      sub.bot.assign(p.bot.size(), 0);
      for (std::size_t c = 0; c < p.top.size(); ++c) {
        if (p.top[c] != 0 &&
            result.net_group[static_cast<std::size_t>(p.top[c])] ==
                static_cast<int>(g)) {
          sub.top[c] = p.top[c];
        }
        if (p.bot[c] != 0 &&
            result.net_group[static_cast<std::size_t>(p.bot[c])] ==
                static_cast<int>(g)) {
          sub.bot[c] = p.bot[c];
        }
      }
      const auto problems =
          channel::validate_route(sub, result.group_routes[g]);
      EXPECT_TRUE(problems.empty())
          << "trial " << trial << " group " << g << ": "
          << (problems.empty() ? "" : problems[0]);
    }
  }
}

TEST(MultiLayer, ThreePairsSupported) {
  util::Rng rng(31);
  const auto p = channel::testing::random_problem(rng, 30, 12);
  MultiLayerOptions options;
  options.layer_pairs = 3;
  const auto result = route_multilayer(p, options);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.group_routes.size(), 3u);
}

}  // namespace
}  // namespace ocr::mlchannel

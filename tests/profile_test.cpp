#include "util/profile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "json_test_util.hpp"
#include "util/trace.hpp"

namespace ocr::util {
namespace {

std::vector<Profiler::Record> spans_named(const Profiler& p,
                                          const std::string& name) {
  std::vector<Profiler::Record> out;
  for (const Profiler::Record& r : p.records()) {
    if (r.name == name) out.push_back(r);
  }
  return out;
}

TEST(Profiler, DisabledRecordsNothing) {
  Profiler p;
  {
    Span s("noop", p);
    p.instant("also-noop");
  }
  EXPECT_TRUE(p.records().empty());
  EXPECT_EQ(p.dropped(), 0u);
}

TEST(Profiler, EnableMidSpanLeavesThatSpanInert) {
  Profiler p;
  {
    Span s("early", p);  // constructed while disabled: inert forever
    p.enable();
  }
  EXPECT_TRUE(spans_named(p, "early").empty());
}

TEST(Profiler, RecordsNestingDepth) {
  Profiler p;
  p.enable();
  {
    Span outer("outer", p);
    {
      Span inner("inner", p);
      Span innermost("innermost", p);
    }
    Span sibling("sibling", p);
  }
  const auto outer_r = spans_named(p, "outer");
  const auto inner_r = spans_named(p, "inner");
  const auto innermost_r = spans_named(p, "innermost");
  const auto sibling_r = spans_named(p, "sibling");
  ASSERT_EQ(outer_r.size(), 1u);
  ASSERT_EQ(inner_r.size(), 1u);
  ASSERT_EQ(innermost_r.size(), 1u);
  ASSERT_EQ(sibling_r.size(), 1u);
  EXPECT_EQ(outer_r[0].depth, 0u);
  EXPECT_EQ(inner_r[0].depth, 1u);
  EXPECT_EQ(innermost_r[0].depth, 2u);
  EXPECT_EQ(sibling_r[0].depth, 1u);
  EXPECT_GE(outer_r[0].dur_us, inner_r[0].dur_us);
}

TEST(Profiler, AttributesSpansToTheirThreads) {
  Profiler p;
  p.enable();
  {
    Span main_span("main", p);
    std::thread t1([&p] { Span s("worker", p); });
    std::thread t2([&p] { Span s("worker", p); });
    t1.join();
    t2.join();
  }
  const auto workers = spans_named(p, "worker");
  const auto mains = spans_named(p, "main");
  ASSERT_EQ(workers.size(), 2u);
  ASSERT_EQ(mains.size(), 1u);
  // Each thread gets its own dense tid and the workers differ from main.
  EXPECT_NE(workers[0].tid, workers[1].tid);
  EXPECT_NE(workers[0].tid, mains[0].tid);
  EXPECT_NE(workers[1].tid, mains[0].tid);
  // Worker spans are top-level on their own threads despite the open
  // "main" span on the launching thread.
  EXPECT_EQ(workers[0].depth, 0u);
  EXPECT_EQ(workers[1].depth, 0u);
}

TEST(Profiler, InstantEventsHaveNoDuration) {
  Profiler p;
  p.enable();
  p.instant("marker");
  const auto markers = spans_named(p, "marker");
  ASSERT_EQ(markers.size(), 1u);
  EXPECT_EQ(markers[0].dur_us, -1);
}

TEST(Profiler, RingWrapCountsDropped) {
  Profiler p;
  p.enable(/*ring_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    Span s("tick", p);
  }
  EXPECT_EQ(p.records().size(), 4u);
  EXPECT_EQ(p.dropped(), 6u);
  // The survivors are the newest records, in chronological order.
  const auto records = p.records();
  EXPECT_TRUE(std::is_sorted(records.begin(), records.end(),
                             [](const Profiler::Record& a,
                                const Profiler::Record& b) {
                               return a.start_us < b.start_us;
                             }));
}

TEST(Profiler, ClearDropsRecordsKeepsEnabled) {
  Profiler p;
  p.enable();
  { Span s("before", p); }
  p.clear();
  EXPECT_TRUE(p.records().empty());
  EXPECT_TRUE(p.enabled());
  { Span s("after", p); }
  EXPECT_EQ(p.records().size(), 1u);
}

TEST(Profiler, StageTotalsSumOnlyTopLevelSpans) {
  Profiler p;
  p.enable();
  {
    Span a("stage", p);
    Span nested("stage", p);  // depth 1: must not double-count
  }
  { Span b("stage", p); }
  { Span c("other", p); }
  const auto totals = p.stage_totals();
  ASSERT_EQ(totals.size(), 2u);  // "stage" and "other", insertion order
  EXPECT_EQ(totals[0].first, "stage");
  EXPECT_EQ(totals[1].first, "other");
  // "stage" total = the two depth-0 spans only.
  const auto stages = spans_named(p, "stage");
  std::int64_t expected = 0;
  for (const auto& r : stages) {
    if (r.depth == 0) expected += r.dur_us;
  }
  EXPECT_EQ(totals[0].second, expected);
}

TEST(Profiler, ChromeJsonIsValidAndCarriesSpans) {
  Profiler p;
  p.enable();
  {
    Span outer("flow \"quoted\"", p);  // name needing JSON escaping
    Span inner("engine.search", p);
  }
  p.instant("net");

  const std::string json = p.to_chrome_json();
  std::string error;
  ASSERT_TRUE(test::JsonValidator::valid(json, &error)) << error;
  // Chrome trace-event envelope with complete + instant events.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.search\""), std::string::npos);
  EXPECT_NE(json.find("flow \\\"quoted\\\""), std::string::npos);
}

TEST(Profiler, TraceSinkMirrorsEventsAsInstants) {
  Profiler p;
  p.enable();
  TraceSink sink;
  sink.set_mirror(&p);
  TraceEvent ev("net");
  ev.add("id", 7);
  sink.record(std::move(ev));
  sink.record(TraceEvent("degrade"));

  const auto nets = spans_named(p, "net");
  const auto degrades = spans_named(p, "degrade");
  ASSERT_EQ(nets.size(), 1u);
  ASSERT_EQ(degrades.size(), 1u);
  EXPECT_EQ(nets[0].dur_us, -1);
  // The sink still collects its own events.
  EXPECT_EQ(sink.size(), 2u);

  sink.set_mirror(nullptr);
  sink.record(TraceEvent("net"));
  EXPECT_EQ(spans_named(p, "net").size(), 1u);
}

// Many threads record spans concurrently while one thread snapshots;
// run under TSan in CI.
TEST(Profiler, ConcurrentSpansAreAllRecorded) {
  Profiler p;
  p.enable(/*ring_capacity=*/1 << 12);
  constexpr int kThreads = 8;
  constexpr int kSpans = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&p] {
      for (int i = 0; i < kSpans; ++i) {
        Span s("work", p);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(spans_named(p, "work").size(),
            static_cast<std::size_t>(kThreads) * kSpans);
  std::set<std::uint32_t> tids;
  for (const auto& r : p.records()) tids.insert(r.tid);
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

TEST(Profiler, GlobalIsSingletonAndMacroCompiles) {
  EXPECT_EQ(&Profiler::global(), &Profiler::global());
  // OCR_SPAN targets the (disabled-by-default) global profiler.
  OCR_SPAN("macro.smoke");
  OCR_SPAN("macro.smoke2");  // two on one scope: distinct variable names
}

}  // namespace
}  // namespace ocr::util

#include <gtest/gtest.h>

#include "bench_data/synthetic.hpp"
#include "netlist/stats.hpp"
#include "partition/partition.hpp"

namespace ocr::bench_data {
namespace {

TEST(Synthetic, Ami33MatchesTable1) {
  const auto ml = generate_macro_layout(ami33_spec());
  EXPECT_TRUE(ml.validate().empty());
  EXPECT_EQ(ml.cells().size(), 33u);
  EXPECT_EQ(ml.nets().size(), 123u);
  // Level-A partition: 4 critical nets averaging 44.25 pins.
  const auto layout = ml.assemble(
      std::vector<geom::Coord>(ml.num_channels(), 0));
  const auto partition = partition::partition_by_class(layout);
  EXPECT_EQ(partition.set_a.size(), 4u);
  const auto stats = netlist::compute_subset_stats(layout, partition.set_a);
  EXPECT_NEAR(stats.avg_pins_per_net, 44.25, 0.01);
}

TEST(Synthetic, XeroxMatchesTable1) {
  const auto ml = generate_macro_layout(xerox_spec());
  EXPECT_TRUE(ml.validate().empty());
  EXPECT_EQ(ml.cells().size(), 10u);
  EXPECT_EQ(ml.nets().size(), 203u);
  const auto layout = ml.assemble(
      std::vector<geom::Coord>(ml.num_channels(), 0));
  const auto partition = partition::partition_by_class(layout);
  EXPECT_EQ(partition.set_a.size(), 21u);
  const auto stats = netlist::compute_subset_stats(layout, partition.set_a);
  EXPECT_NEAR(stats.avg_pins_per_net, 9.19, 0.01);
}

TEST(Synthetic, Ex3MatchesPaper) {
  const auto ml = generate_macro_layout(ex3_spec());
  EXPECT_TRUE(ml.validate().empty());
  const auto layout = ml.assemble(
      std::vector<geom::Coord>(ml.num_channels(), 0));
  const auto partition = partition::partition_by_class(layout);
  EXPECT_EQ(partition.set_a.size(), 56u);
  const auto stats = netlist::compute_subset_stats(layout, partition.set_a);
  EXPECT_NEAR(stats.avg_pins_per_net, 3.23, 0.01);
}

TEST(Synthetic, DeterministicForSameSeed) {
  const auto a = generate_macro_layout(ami33_spec());
  const auto b = generate_macro_layout(ami33_spec());
  ASSERT_EQ(a.cells().size(), b.cells().size());
  for (std::size_t i = 0; i < a.cells().size(); ++i) {
    EXPECT_EQ(a.cells()[i].x, b.cells()[i].x);
    EXPECT_EQ(a.cells()[i].width, b.cells()[i].width);
  }
  ASSERT_EQ(a.pins().size(), b.pins().size());
  for (std::size_t i = 0; i < a.pins().size(); ++i) {
    EXPECT_EQ(a.pins()[i].x, b.pins()[i].x);
    EXPECT_EQ(a.pins()[i].net, b.pins()[i].net);
  }
}

TEST(Synthetic, DifferentSeedsDiffer) {
  auto spec = random_spec(1);
  const auto a = generate_macro_layout(spec);
  spec.seed = 2;
  const auto b = generate_macro_layout(spec);
  bool any_difference = a.pins().size() != b.pins().size();
  for (std::size_t i = 0;
       !any_difference && i < std::min(a.pins().size(), b.pins().size());
       ++i) {
    any_difference = a.pins()[i].x != b.pins()[i].x;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Synthetic, EveryRowHasFeedthroughGaps) {
  const auto ml = generate_macro_layout(ami33_spec());
  for (int row = 0; row < ml.num_rows(); ++row) {
    const auto gaps = ml.row_gaps(row);
    EXPECT_FALSE(gaps.empty()) << "row " << row;
    geom::Coord widest = 0;
    for (const auto& gap : gaps) widest = std::max(widest, gap.length());
    EXPECT_GE(widest, 30) << "row " << row;
  }
}

TEST(Synthetic, ObstaclesPresentWhenRequested) {
  auto spec = random_spec(7);
  spec.obstacle_fraction = 1.0;
  const auto ml = generate_macro_layout(spec);
  EXPECT_EQ(ml.obstacles().size(), ml.cells().size());
  spec.obstacle_fraction = 0.0;
  const auto ml2 = generate_macro_layout(spec);
  EXPECT_TRUE(ml2.obstacles().empty());
}

TEST(Synthetic, ScalesWithParameter) {
  const auto small = generate_macro_layout(random_spec(3, 0.5));
  const auto large = generate_macro_layout(random_spec(3, 2.0));
  EXPECT_LT(small.cells().size(), large.cells().size());
  EXPECT_LT(small.nets().size(), large.nets().size());
}

TEST(Synthetic, AssembledStatsReasonable) {
  const auto ml = generate_macro_layout(ami33_spec());
  const auto layout = ml.assemble(
      std::vector<geom::Coord>(ml.num_channels(), 30));
  const auto stats = netlist::compute_stats(layout);
  EXPECT_GT(stats.cell_utilization, 0.3);
  EXPECT_LT(stats.cell_utilization, 1.0);
  EXPECT_GT(stats.avg_pins_per_net, 2.0);
}

}  // namespace
}  // namespace ocr::bench_data

#include <gtest/gtest.h>

#include "channel/greedy.hpp"
#include "channel/left_edge.hpp"
#include "channel_test_util.hpp"
#include "util/rng.hpp"

namespace ocr::channel {
namespace {

TEST(Greedy, EmptyChannel) {
  ChannelProblem p;
  p.top = {0, 0};
  p.bot = {0, 0};
  const auto route = route_greedy(p);
  EXPECT_TRUE(route.success);
  EXPECT_EQ(route.num_tracks, 0);
}

TEST(Greedy, SingleNet) {
  ChannelProblem p;
  p.top = {1, 0, 0, 0};
  p.bot = {0, 0, 0, 1};
  const auto route = route_greedy(p);
  ASSERT_TRUE(route.success) << route.failure_reason;
  EXPECT_TRUE(validate_route(p, route).empty());
  EXPECT_EQ(route.num_tracks, 1);
}

TEST(Greedy, StraightThroughNet) {
  ChannelProblem p;
  p.top = {0, 1, 0};
  p.bot = {0, 1, 0};
  const auto route = route_greedy(p);
  ASSERT_TRUE(route.success);
  EXPECT_TRUE(validate_route(p, route).empty());
}

TEST(Greedy, HandlesVcgCycle) {
  // The instance the left-edge router (without doglegs) cannot route.
  ChannelProblem p;
  p.top = {1, 2, 1, 2};
  p.bot = {2, 1, 2, 1};
  const auto route = route_greedy(p);
  ASSERT_TRUE(route.success) << route.failure_reason;
  EXPECT_TRUE(validate_route(p, route).empty());
}

TEST(Greedy, TightSwapCycle) {
  ChannelProblem p;
  p.top = {1, 2};
  p.bot = {2, 1};
  const auto route = route_greedy(p);
  ASSERT_TRUE(route.success) << route.failure_reason;
  const auto problems = validate_route(p, route);
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(Greedy, MultiPinNet) {
  ChannelProblem p;
  p.top = {1, 0, 1, 0, 1};
  p.bot = {0, 1, 0, 1, 0};
  const auto route = route_greedy(p);
  ASSERT_TRUE(route.success);
  EXPECT_TRUE(validate_route(p, route).empty());
}

TEST(Greedy, TracksAtLeastDensity) {
  util::Rng rng(55);
  for (int trial = 0; trial < 20; ++trial) {
    const auto p = testing::random_problem(rng, 25, 7);
    const auto route = route_greedy(p);
    ASSERT_TRUE(route.success) << "trial " << trial;
    EXPECT_GE(route.num_tracks, channel_density(p));
  }
}

TEST(Greedy, DenseColumnBothPins) {
  // Top and bottom pins of different nets in every column.
  ChannelProblem p;
  p.top = {1, 3, 5, 1};
  p.bot = {2, 4, 2, 4};
  const auto route = route_greedy(p);
  ASSERT_TRUE(route.success) << route.failure_reason;
  EXPECT_TRUE(validate_route(p, route).empty());
}

TEST(GreedyProperty, RandomProblemsAlwaysComplete) {
  util::Rng rng(71);
  for (int trial = 0; trial < 80; ++trial) {
    const auto p = testing::random_problem(
        rng, static_cast<int>(rng.uniform_int(4, 50)),
        static_cast<int>(rng.uniform_int(1, 14)),
        static_cast<int>(rng.uniform_int(2, 6)));
    const auto route = route_greedy(p);
    ASSERT_TRUE(route.success)
        << "trial " << trial << ": " << route.failure_reason;
    const auto problems = validate_route(p, route);
    ASSERT_TRUE(problems.empty())
        << "trial " << trial << ": " << problems.front();
  }
}

TEST(GreedyProperty, ComparableToLeftEdge) {
  // Greedy should not need wildly more tracks than the dogleg left-edge
  // router on instances both can route.
  util::Rng rng(83);
  int comparisons = 0;
  long long greedy_total = 0;
  long long lea_total = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const auto p = testing::random_problem(rng, 30, 8);
    const auto g = route_greedy(p);
    const auto l = route_left_edge(p);
    if (!g.success || !l.success) continue;
    ++comparisons;
    greedy_total += g.num_tracks;
    lea_total += l.num_tracks;
  }
  ASSERT_GT(comparisons, 20);
  EXPECT_LE(greedy_total, 2 * lea_total + comparisons);
}

}  // namespace
}  // namespace ocr::channel

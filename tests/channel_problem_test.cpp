#include <gtest/gtest.h>

#include "channel/problem.hpp"

namespace ocr::channel {
namespace {

// The classic textbook instance used throughout these tests:
// columns:   0  1  2  3  4  5
// top:       1  2  3  0  2  0
// bottom:    0  1  1  3  0  2
ChannelProblem textbook() {
  ChannelProblem p;
  p.top = {1, 2, 3, 0, 2, 0};
  p.bot = {0, 1, 1, 3, 0, 2};
  return p;
}

TEST(Problem, WellFormed) {
  EXPECT_TRUE(textbook().well_formed());
  ChannelProblem bad;
  bad.top = {1, 2};
  bad.bot = {1};
  EXPECT_FALSE(bad.well_formed());
}

TEST(Problem, MaxNet) {
  EXPECT_EQ(textbook().max_net(), 3);
  ChannelProblem empty;
  EXPECT_EQ(empty.max_net(), 0);
}

TEST(Problem, NetSpans) {
  const auto spans = net_spans(textbook());
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_FALSE(spans[0].present());
  EXPECT_EQ(spans[1].lo, 0);
  EXPECT_EQ(spans[1].hi, 2);
  EXPECT_EQ(spans[1].pin_count, 3);
  EXPECT_EQ(spans[2].lo, 1);
  EXPECT_EQ(spans[2].hi, 5);
  EXPECT_EQ(spans[3].lo, 2);
  EXPECT_EQ(spans[3].hi, 3);
}

TEST(Problem, ColumnDensity) {
  const auto density = column_density(textbook());
  // col: 0 -> {1}, 1 -> {1,2}, 2 -> {1,2,3}, 3 -> {2,3}, 4 -> {2}, 5 -> {2}
  EXPECT_EQ(density, (std::vector<int>{1, 2, 3, 2, 1, 1}));
  EXPECT_EQ(channel_density(textbook()), 3);
}

TEST(Problem, VcgEdges) {
  const Vcg vcg = build_vcg(textbook());
  // col1: top 2 over bot 1; col2: top 3 over bot 1; col3: none/3 only bottom;
  // col5: nothing on top.
  ASSERT_EQ(vcg.adjacency.size(), 4u);
  EXPECT_EQ(vcg.adjacency[2], (std::vector<int>{1}));
  EXPECT_EQ(vcg.adjacency[3], (std::vector<int>{1}));
  EXPECT_TRUE(vcg.adjacency[1].empty());
  EXPECT_FALSE(vcg.has_cycle());
}

TEST(Problem, VcgTopologicalOrder) {
  const Vcg vcg = build_vcg(textbook());
  const auto order = vcg.topological_order();
  ASSERT_EQ(order.size(), 3u);
  // 2 and 3 must precede 1.
  const auto pos = [&order](int net) {
    return std::find(order.begin(), order.end(), net) - order.begin();
  };
  EXPECT_LT(pos(2), pos(1));
  EXPECT_LT(pos(3), pos(1));
}

TEST(Problem, VcgCycleDetection) {
  // col0: 1 over 2; col1: 2 over 1 -> cycle.
  ChannelProblem p;
  p.top = {1, 2};
  p.bot = {2, 1};
  const Vcg vcg = build_vcg(p);
  EXPECT_TRUE(vcg.has_cycle());
  EXPECT_TRUE(vcg.topological_order().empty());
}

TEST(Problem, SelfLoopIgnored) {
  // Same net on both sides of a column imposes no constraint.
  ChannelProblem p;
  p.top = {1, 2};
  p.bot = {1, 2};
  const Vcg vcg = build_vcg(p);
  EXPECT_TRUE(vcg.adjacency[1].empty());
  EXPECT_TRUE(vcg.adjacency[2].empty());
  EXPECT_FALSE(vcg.has_cycle());
}

TEST(Problem, ZoneRepresentation) {
  const auto zones = zone_representation(textbook());
  // Maximal crossing sets: {1,2,3} at column 2 and {2,3} shrinks into it;
  // zone boundaries: {1},{1,2} subsets of {1,2,3}.
  ASSERT_FALSE(zones.empty());
  bool found_full = false;
  for (const Zone& z : zones) {
    if (z.nets == std::vector<int>{1, 2, 3}) found_full = true;
  }
  EXPECT_TRUE(found_full);
}

TEST(Problem, ZoneRepresentationDisjointSpans) {
  ChannelProblem p;
  p.top = {1, 1, 0, 2, 2};
  p.bot = {0, 0, 0, 0, 0};
  const auto zones = zone_representation(p);
  ASSERT_EQ(zones.size(), 2u);
  EXPECT_EQ(zones[0].nets, (std::vector<int>{1}));
  EXPECT_EQ(zones[1].nets, (std::vector<int>{2}));
}

TEST(Problem, EmptyChannel) {
  ChannelProblem p;
  p.top = {0, 0, 0};
  p.bot = {0, 0, 0};
  EXPECT_EQ(channel_density(p), 0);
  EXPECT_TRUE(zone_representation(p).empty());
  EXPECT_FALSE(build_vcg(p).has_cycle());
}

}  // namespace
}  // namespace ocr::channel

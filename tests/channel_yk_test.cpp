#include <gtest/gtest.h>

#include "channel/greedy.hpp"
#include "channel/left_edge.hpp"
#include "channel/yoshimura_kuh.hpp"
#include "channel_test_util.hpp"
#include "util/rng.hpp"

namespace ocr::channel {
namespace {

TEST(YoshimuraKuh, EmptyChannel) {
  ChannelProblem p;
  p.top = {0, 0};
  p.bot = {0, 0};
  const auto route = route_yoshimura_kuh(p);
  EXPECT_TRUE(route.success);
  EXPECT_EQ(route.num_tracks, 0);
}

TEST(YoshimuraKuh, SingleNet) {
  ChannelProblem p;
  p.top = {1, 0, 0, 0};
  p.bot = {0, 0, 0, 1};
  const auto route = route_yoshimura_kuh(p);
  ASSERT_TRUE(route.success) << route.failure_reason;
  EXPECT_EQ(route.num_tracks, 1);
  EXPECT_TRUE(validate_route(p, route).empty());
}

TEST(YoshimuraKuh, StraightThroughNeedsNoTrack) {
  ChannelProblem p;
  p.top = {0, 1, 0};
  p.bot = {0, 1, 0};
  const auto route = route_yoshimura_kuh(p);
  ASSERT_TRUE(route.success);
  EXPECT_EQ(route.num_tracks, 0);
  EXPECT_TRUE(validate_route(p, route).empty());
}

TEST(YoshimuraKuh, MergesDisjointNets) {
  // Two nets with disjoint spans and no vertical relation share a track.
  ChannelProblem p;
  p.top = {1, 1, 0, 2, 2};
  p.bot = {0, 0, 0, 0, 0};
  const auto route = route_yoshimura_kuh(p);
  ASSERT_TRUE(route.success);
  EXPECT_EQ(route.num_tracks, 1);
  EXPECT_TRUE(validate_route(p, route).empty());
}

TEST(YoshimuraKuh, VcgBlocksIllegalMerge) {
  // Net 1 ends before net 2 begins, but a chain 1 -> 3 -> 2 in the VCG
  // forbids sharing a track.
  ChannelProblem p;
  //        c0 c1 c2 c3 c4
  p.top = {1, 1, 3, 0, 0};
  p.bot = {0, 3, 2, 0, 2};
  // col1: 1 over 3; col2: 3 over 2. Net 1 span [0,1], net 2 span [2,4]:
  // disjoint, but 1 must stay above 2 transitively.
  const auto route = route_yoshimura_kuh(p);
  ASSERT_TRUE(route.success) << route.failure_reason;
  EXPECT_TRUE(validate_route(p, route).empty());
  int t1 = 0;
  int t2 = 0;
  int t3 = 0;
  for (const HSeg& h : route.hsegs) {
    if (h.net == 1) t1 = h.track;
    if (h.net == 2) t2 = h.track;
    if (h.net == 3) t3 = h.track;
  }
  EXPECT_LT(t1, t3);
  EXPECT_LT(t3, t2);
  EXPECT_NE(t1, t2);
}

TEST(YoshimuraKuh, RespectsVerticalConstraints) {
  ChannelProblem p;
  p.top = {1, 2, 0, 2};
  p.bot = {0, 1, 1, 0};
  const auto route = route_yoshimura_kuh(p);
  ASSERT_TRUE(route.success);
  EXPECT_TRUE(validate_route(p, route).empty());
  int t1 = 0;
  int t2 = 0;
  for (const HSeg& h : route.hsegs) {
    if (h.net == 1) t1 = h.track;
    if (h.net == 2) t2 = h.track;
  }
  EXPECT_LT(t2, t1);  // net 2 (top pins) above net 1
}

TEST(YoshimuraKuh, FailsOnCycle) {
  ChannelProblem p;
  p.top = {1, 2};
  p.bot = {2, 1};
  const auto route = route_yoshimura_kuh(p);
  EXPECT_FALSE(route.success);
  EXPECT_FALSE(route.failure_reason.empty());
}

TEST(YoshimuraKuh, TracksAtLeastDensity) {
  util::Rng rng(1234);
  for (int trial = 0; trial < 25; ++trial) {
    const auto p = testing::random_problem(rng, 30, 8);
    const auto route = route_yoshimura_kuh(p);
    if (!route.success) continue;  // cyclic instances are expected to fail
    EXPECT_GE(route.num_tracks, channel_density(p)) << "trial " << trial;
    const auto problems = validate_route(p, route);
    EXPECT_TRUE(problems.empty())
        << "trial " << trial << ": " << problems.front();
  }
}

TEST(YoshimuraKuh, CompetitiveWithLeftEdge) {
  // On acyclic instances the merging router should be at least as good as
  // the non-dogleg left-edge router (both are dogleg-free; merging
  // minimizes the longest-path growth).
  util::Rng rng(77);
  long long yk_total = 0;
  long long lea_total = 0;
  int comparisons = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const auto p = testing::random_problem(rng, 40, 10);
    const auto yk = route_yoshimura_kuh(p);
    const auto lea = route_left_edge(p, LeftEdgeOptions{false});
    if (!yk.success || !lea.success) continue;
    ++comparisons;
    yk_total += yk.num_tracks;
    lea_total += lea.num_tracks;
  }
  ASSERT_GT(comparisons, 10);
  EXPECT_LE(yk_total, lea_total + comparisons / 4);
}

class YkSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(YkSeedSweep, ValidatesWhenSuccessful) {
  util::Rng rng(GetParam());
  const auto p = testing::random_problem(
      rng, static_cast<int>(rng.uniform_int(6, 50)),
      static_cast<int>(rng.uniform_int(2, 14)));
  const auto route = route_yoshimura_kuh(p);
  if (!route.success) GTEST_SKIP() << "cyclic VCG";
  const auto problems = validate_route(p, route);
  ASSERT_TRUE(problems.empty()) << problems.front();
}

INSTANTIATE_TEST_SUITE_P(Seeds, YkSeedSweep,
                         ::testing::Range<std::uint64_t>(900, 925));

}  // namespace
}  // namespace ocr::channel

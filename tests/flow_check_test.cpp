#include <gtest/gtest.h>

#include "bench_data/synthetic.hpp"
#include "flow/check.hpp"
#include "flow/flow.hpp"
#include "partition/partition.hpp"

namespace ocr::flow {
namespace {

FlowArtifacts route_example(std::uint64_t seed, double scale = 0.5) {
  const auto ml =
      bench_data::generate_macro_layout(bench_data::random_spec(seed, scale));
  const auto layout = ml.assemble(
      std::vector<geom::Coord>(static_cast<std::size_t>(ml.num_channels()),
                               0));
  FlowArtifacts artifacts;
  run_over_cell_flow(ml, partition::partition_by_class(layout),
                     FlowOptions{}, &artifacts);
  return artifacts;
}

TEST(FlowCheck, CleanRunPasses) {
  const auto artifacts = route_example(101);
  const auto problems = check_over_cell_result(artifacts);
  EXPECT_TRUE(problems.empty())
      << (problems.empty() ? "" : problems.front());
}

TEST(FlowCheck, ThreePaperExamplesPass) {
  for (const auto& spec : {bench_data::ami33_spec(), bench_data::xerox_spec(),
                           bench_data::ex3_spec()}) {
    const auto ml = bench_data::generate_macro_layout(spec);
    const auto layout = ml.assemble(
        std::vector<geom::Coord>(static_cast<std::size_t>(ml.num_channels()),
                                 0));
    FlowArtifacts artifacts;
    run_over_cell_flow(ml, partition::partition_by_class(layout),
                       FlowOptions{}, &artifacts);
    const auto problems = check_over_cell_result(artifacts);
    EXPECT_TRUE(problems.empty())
        << spec.name << ": " << (problems.empty() ? "" : problems.front());
  }
}

TEST(FlowCheck, StraightenedRunStillPasses) {
  const auto ml =
      bench_data::generate_macro_layout(bench_data::random_spec(7, 0.5));
  const auto layout = ml.assemble(
      std::vector<geom::Coord>(static_cast<std::size_t>(ml.num_channels()),
                               0));
  FlowOptions options;
  options.straighten_levelb = true;
  FlowArtifacts artifacts;
  run_over_cell_flow(ml, partition::partition_by_class(layout), options,
                     &artifacts);
  const auto problems = check_over_cell_result(artifacts);
  EXPECT_TRUE(problems.empty())
      << (problems.empty() ? "" : problems.front());
}

TEST(FlowCheck, DetectsInjectedCrossNetOverlap) {
  auto artifacts = route_example(102);
  // Corrupt: copy a wired path from one net into another net's result.
  levelb::NetResult* donor = nullptr;
  levelb::NetResult* victim = nullptr;
  for (auto& net : artifacts.levelb.nets) {
    if (!net.paths.empty()) {
      if (donor == nullptr) {
        donor = &net;
      } else if (victim == nullptr) {
        victim = &net;
        break;
      }
    }
  }
  ASSERT_NE(donor, nullptr);
  ASSERT_NE(victim, nullptr);
  victim->paths.push_back(donor->paths.front());
  const auto problems = check_over_cell_result(artifacts);
  bool overlap = false;
  for (const auto& p : problems) {
    if (p.find("overlap") != std::string::npos) overlap = true;
  }
  EXPECT_TRUE(overlap);
}

TEST(FlowCheck, DetectsInjectedDisconnection) {
  auto artifacts = route_example(103);
  // Corrupt: delete all wiring of a complete multi-pin net.
  for (auto& net : artifacts.levelb.nets) {
    if (net.complete && !net.paths.empty()) {
      net.paths.clear();
      break;
    }
  }
  const auto problems = check_over_cell_result(artifacts);
  bool flagged = false;
  for (const auto& p : problems) {
    if (p.find("no wiring") != std::string::npos ||
        p.find("disconnected") != std::string::npos ||
        p.find("not on the wiring") != std::string::npos) {
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged);
}

TEST(FlowCheck, DetectsInjectedObstacleViolation) {
  auto artifacts = route_example(104);
  // Corrupt: drop an obstacle right on top of an existing wire.
  const levelb::Path* wire = nullptr;
  for (const auto& net : artifacts.levelb.nets) {
    for (const auto& path : net.paths) {
      for (std::size_t leg = 0; leg + 1 < path.points.size(); ++leg) {
        if (path.points[leg].y == path.points[leg + 1].y &&
            std::abs(path.points[leg].x - path.points[leg + 1].x) > 40) {
          wire = &path;
        }
      }
    }
  }
  ASSERT_NE(wire, nullptr);
  const geom::Point mid{(wire->points[0].x + wire->points[1].x) / 2,
                        wire->points[0].y};
  artifacts.layout.add_obstacle(netlist::Obstacle{
      geom::Rect(mid.x - 5, mid.y - 5, mid.x + 5, mid.y + 5), true, true,
      "injected"});
  const auto problems = check_over_cell_result(artifacts);
  bool flagged = false;
  for (const auto& p : problems) {
    if (p.find("injected") != std::string::npos) flagged = true;
  }
  EXPECT_TRUE(flagged);
}

}  // namespace
}  // namespace ocr::flow

/// \file misc_test.cpp
/// \brief Coverage for the smaller corners: logging, layer printing, SVG
/// primitives, contract failures, and cross-module odds and ends.

#include <gtest/gtest.h>

#include <sstream>

#include "geom/layers.hpp"
#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "levelb/figure1.hpp"
#include "maze/lee.hpp"
#include "netlist/ids.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "viz/svg.hpp"

namespace ocr {
namespace {

TEST(Log, LevelGate) {
  const auto old = util::log_level();
  util::set_log_level(util::LogLevel::kError);
  EXPECT_EQ(util::log_level(), util::LogLevel::kError);
  // Emitting below the level is a no-op (nothing observable to assert
  // beyond "does not crash").
  OCR_INFO() << "suppressed";
  OCR_ERROR() << "emitted";
  util::set_log_level(old);
}

TEST(Assert, FiresOnViolatedContract) {
  EXPECT_DEATH(OCR_ASSERT(false, "intentional test failure"),
               "intentional test failure");
}

TEST(Assert, UnreachableFires) {
  EXPECT_DEATH(OCR_UNREACHABLE("should not get here"), "unreachable");
}

TEST(Geom, StreamOperators) {
  std::ostringstream os;
  os << geom::Point{3, 4} << " " << geom::Rect(0, 0, 2, 2) << " "
     << geom::Interval(1, 5) << " " << geom::Layer::kMetal3 << " "
     << geom::Orientation::kVertical;
  EXPECT_EQ(os.str(), "(3,4) [0,0 .. 2,2] [1,5] metal3 V");
}

TEST(Ids, StreamPrinting) {
  std::ostringstream os;
  os << netlist::NetId{7} << " " << netlist::CellId{} << " "
     << netlist::PinId{0};
  EXPECT_EQ(os.str(), "net#7 cell#<invalid> pin#0");
}

TEST(Svg, PrimitivesAppearInOutput) {
  viz::SvgCanvas canvas(geom::Rect(0, 0, 100, 100), 2.0);
  canvas.rect(geom::Rect(10, 10, 20, 20), "#ff0000", "#000000");
  canvas.line({0, 0}, {100, 100}, "#00ff00", 2.0);
  canvas.circle({50, 50}, 3.0, "#0000ff");
  canvas.text({5, 95}, "label");
  const std::string svg = canvas.finish();
  EXPECT_NE(svg.find("<rect"), std::string::npos);
  EXPECT_NE(svg.find("<line"), std::string::npos);
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_NE(svg.find(">label</text>"), std::string::npos);
  EXPECT_NE(svg.find("width=\"200\""), std::string::npos);  // scaled
}

TEST(Svg, YAxisIsFlipped) {
  viz::SvgCanvas canvas(geom::Rect(0, 0, 100, 100), 1.0);
  canvas.circle({0, 0}, 1.0, "#000");    // world bottom-left
  canvas.circle({0, 100}, 1.0, "#000");  // world top-left
  const std::string svg = canvas.finish();
  // Bottom-left renders at SVG y=100, top-left at y=0.
  EXPECT_NE(svg.find("cy=\"100.0\""), std::string::npos);
  EXPECT_NE(svg.find("cy=\"0.0\""), std::string::npos);
}

TEST(Lee, AdjacentCrossings) {
  const auto grid =
      tig::TrackGrid::uniform(geom::Rect(0, 0, 50, 50), 10, 10);
  const auto r =
      maze::lee_connect(grid, grid.crossing(0, 0), grid.crossing(0, 1));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.path.length(), 10);
  EXPECT_EQ(r.path.corners(), 0);
}

TEST(Figure1, GridMatchesPaperDimensions) {
  const auto fig = levelb::make_figure1_instance();
  EXPECT_EQ(fig.grid.num_h(), 4);  // h1..h4
  EXPECT_EQ(fig.grid.num_v(), 6);  // v1..v6
  EXPECT_EQ(fig.b1, (geom::Point{20, 20}));
  EXPECT_EQ(fig.b2, (geom::Point{60, 40}));
}

TEST(Layers, ViaSizesGrowUpTheStack) {
  const geom::DesignRules rules;
  EXPECT_LT(rules.via_size[0], rules.via_size[1]);
  EXPECT_LT(rules.via_size[1], rules.via_size[2]);
}

}  // namespace
}  // namespace ocr

#include <gtest/gtest.h>

#include <map>

#include "levelb/optimize.hpp"
#include "levelb/router.hpp"
#include "util/rng.hpp"

namespace ocr::levelb {
namespace {

using geom::Interval;
using geom::Point;
using geom::Rect;

/// Routes nets on a grid with a temporary blocker that forces a Z-shape,
/// then removes the blocker so the post-pass can straighten.
TEST(Straighten, FlattensZAfterBlockerRemoved) {
  auto grid = tig::TrackGrid::uniform(Rect(0, 0, 400, 400), 10, 10);
  // Block the direct horizontal track between the terminals.
  grid.block_h(grid.nearest_h(205), Interval(100, 300));
  LevelBOptions options;
  options.ripup_rounds = 0;
  LevelBRouter router(grid);
  auto result = router.route({BNet{1, {Point{5, 205}, Point{395, 205}}}});
  ASSERT_EQ(result.failed_nets, 0);
  ASSERT_GE(result.nets[0].corners, 2);  // forced detour

  // The blocker goes away (e.g. a ripped-up wire).
  grid.unblock_h(grid.nearest_h(205), Interval(100, 300));

  const auto stats = straighten_corners(grid, result);
  EXPECT_GT(stats.corners_removed, 0);
  EXPECT_GT(stats.length_saved, 0);
  EXPECT_EQ(result.nets[0].corners, 0);  // straight again
  EXPECT_EQ(result.nets[0].wire_length, 390);
  // The grid reflects the new wiring: the straight track is blocked again.
  EXPECT_FALSE(grid.h_is_free(grid.nearest_h(205), Interval(5, 395)));
}

TEST(Straighten, NoopOnAlreadyOptimalPaths) {
  auto grid = tig::TrackGrid::uniform(Rect(0, 0, 400, 400), 10, 10);
  LevelBRouter router(grid);
  auto result = router.route({
      BNet{1, {Point{5, 5}, Point{395, 395}}},
      BNet{2, {Point{5, 395}, Point{395, 5}}},
  });
  ASSERT_EQ(result.failed_nets, 0);
  const auto before_wl = result.total_wire_length;
  const auto before_corners = result.total_corners;
  const auto stats = straighten_corners(grid, result);
  EXPECT_EQ(stats.corners_removed, 0);
  EXPECT_EQ(result.total_wire_length, before_wl);
  EXPECT_EQ(result.total_corners, before_corners);
}

TEST(Straighten, RespectsOtherNets) {
  auto grid = tig::TrackGrid::uniform(Rect(0, 0, 400, 400), 10, 10);
  LevelBRouter router(grid);
  // Net 2's straight track stays occupied by net 1, so net 2's detour
  // must survive the post-pass.
  auto result = router.route({
      BNet{1, {Point{105, 205}, Point{295, 205}}},   // blocks the middle
      BNet{2, {Point{5, 205}, Point{395, 205}}},     // must detour
  });
  ASSERT_EQ(result.failed_nets, 0);
  int detour_corners = 0;
  for (const auto& net : result.nets) {
    if (net.id == 2) detour_corners = net.corners;
  }
  ASSERT_GE(detour_corners, 2);
  straighten_corners(grid, result);
  for (const auto& net : result.nets) {
    if (net.id == 2) EXPECT_GE(net.corners, 2);  // still detoured
  }
}

TEST(Straighten, PreservesCrossNetExclusion) {
  // After optimization, different nets still never share track extents.
  util::Rng rng(4321);
  auto grid = tig::TrackGrid::uniform(Rect(0, 0, 500, 500), 10, 12);
  std::vector<BNet> nets;
  for (int n = 0; n < 30; ++n) {
    nets.push_back(BNet{
        n, {Point{rng.uniform_int(0, 499), rng.uniform_int(0, 499)},
            Point{rng.uniform_int(0, 499), rng.uniform_int(0, 499)},
            Point{rng.uniform_int(0, 499), rng.uniform_int(0, 499)}}});
  }
  LevelBRouter router(grid);
  auto result = router.route(nets);
  straighten_corners(grid, result);

  struct TrackLeg {
    int net;
    Interval span;
  };
  std::map<std::pair<int, int>, std::vector<TrackLeg>> by_track;
  for (const auto& net : result.nets) {
    for (const auto& path : net.paths) {
      for (std::size_t leg = 0; leg + 1 < path.points.size(); ++leg) {
        const auto& p = path.points[leg];
        const auto& q = path.points[leg + 1];
        const auto& t = path.tracks[leg];
        const bool horizontal = t.orient == geom::Orientation::kHorizontal;
        by_track[{horizontal ? 0 : 1, t.index}].push_back(TrackLeg{
            net.id,
            horizontal
                ? Interval(std::min(p.x, q.x), std::max(p.x, q.x))
                : Interval(std::min(p.y, q.y), std::max(p.y, q.y))});
      }
    }
  }
  for (const auto& [track, legs] : by_track) {
    for (std::size_t i = 0; i < legs.size(); ++i) {
      for (std::size_t j = i + 1; j < legs.size(); ++j) {
        if (legs[i].net == legs[j].net) continue;
        ASSERT_FALSE(legs[i].span.overlaps(legs[j].span))
            << "nets " << legs[i].net << "/" << legs[j].net
            << " overlap after straightening";
      }
    }
  }
}

TEST(Straighten, AccountingStaysConsistent) {
  util::Rng rng(2222);
  auto grid = tig::TrackGrid::uniform(Rect(0, 0, 400, 400), 10, 10);
  std::vector<BNet> nets;
  for (int n = 0; n < 20; ++n) {
    nets.push_back(BNet{
        n, {Point{rng.uniform_int(0, 399), rng.uniform_int(0, 399)},
            Point{rng.uniform_int(0, 399), rng.uniform_int(0, 399)}}});
  }
  LevelBRouter router(grid);
  auto result = router.route(nets);
  straighten_corners(grid, result);
  // Totals equal the per-net sums and the per-path sums.
  geom::Coord wl = 0;
  int corners = 0;
  for (const auto& net : result.nets) {
    geom::Coord net_wl = 0;
    int net_corners = 0;
    for (const auto& path : net.paths) {
      net_wl += path.length();
      net_corners += path.corners();
    }
    EXPECT_EQ(net.wire_length, net_wl) << "net " << net.id;
    EXPECT_EQ(net.corners, net_corners) << "net " << net.id;
    wl += net_wl;
    corners += net_corners;
  }
  EXPECT_EQ(result.total_wire_length, wl);
  EXPECT_EQ(result.total_corners, corners);
}

TEST(Straighten, MultiTerminalJunctionsPreserved) {
  // A T-shaped 3-terminal net: straightening one branch must not detach
  // the junction where the second branch meets it.
  auto grid = tig::TrackGrid::uniform(Rect(0, 0, 400, 400), 10, 10);
  LevelBRouter router(grid);
  auto result = router.route(
      {BNet{1, {Point{5, 205}, Point{395, 205}, Point{205, 5}}}});
  ASSERT_EQ(result.failed_nets, 0);
  straighten_corners(grid, result);
  // Every later path still starts/ends on some other path of the net.
  const auto& net = result.nets[0];
  ASSERT_GE(net.paths.size(), 2u);
  for (std::size_t p = 1; p < net.paths.size(); ++p) {
    const Point& tail = net.paths[p].points.back();
    bool attached = false;
    for (std::size_t q = 0; q < net.paths.size(); ++q) {
      if (q == p) continue;
      for (std::size_t leg = 0; leg + 1 < net.paths[q].points.size();
           ++leg) {
        const Point& a = net.paths[q].points[leg];
        const Point& b = net.paths[q].points[leg + 1];
        const Rect box = Rect::from_corners(a, b);
        if (box.contains(tail)) attached = true;
      }
    }
    EXPECT_TRUE(attached) << "path " << p << " lost its junction";
  }
}

}  // namespace
}  // namespace ocr::levelb

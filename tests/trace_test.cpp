/// \file trace_test.cpp
/// \brief util::Trace* unit tests: JSON rendering, escaping, thread-safe
/// collection, file output.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "util/trace.hpp"

namespace ocr::util {
namespace {

TEST(Trace, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nfeed\ttab"), "line\\nfeed\\ttab");
  EXPECT_EQ(json_escape(std::string("nul\x01") + "x"), "nul\\u0001x");
}

TEST(Trace, ValueRendering) {
  EXPECT_EQ(TraceValue(true).to_json(), "true");
  EXPECT_EQ(TraceValue(false).to_json(), "false");
  EXPECT_EQ(TraceValue(42).to_json(), "42");
  EXPECT_EQ(TraceValue(-7LL).to_json(), "-7");
  EXPECT_EQ(TraceValue(2.5).to_json(), "2.5");
  EXPECT_EQ(TraceValue("hi \"there\"").to_json(), "\"hi \\\"there\\\"\"");
  // Non-finite doubles must not produce invalid JSON.
  EXPECT_EQ(TraceValue(std::nan("")).to_json(), "null");
}

TEST(Trace, EventRendering) {
  TraceEvent ev("net");
  ev.add("net", 3).add("complete", true).add("mode", "serial");
  EXPECT_EQ(ev.to_json(),
            "{\"kind\":\"net\",\"net\":3,\"complete\":true,"
            "\"mode\":\"serial\"}");
}

TEST(Trace, SinkCollectsAndSerializes) {
  TraceSink sink;
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.to_json(), "[\n]\n");
  sink.record(TraceEvent("a"));
  sink.record(TraceEvent("b"));
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.to_json(),
            "[\n  {\"kind\":\"a\"},\n  {\"kind\":\"b\"}\n]\n");
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
}

TEST(Trace, ConcurrentRecordIsSafe) {
  TraceSink sink;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&sink, t] {
      for (int i = 0; i < 250; ++i) {
        TraceEvent ev("tick");
        ev.add("thread", t).add("i", i);
        sink.record(std::move(ev));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(sink.size(), 1000u);
}

TEST(Trace, WriteJsonFile) {
  TraceSink sink;
  TraceEvent ev("net");
  ev.add("net", 1);
  sink.record(std::move(ev));
  const std::string path = "trace_test_out.trace.json";
  ASSERT_TRUE(sink.write_json_file(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), sink.to_json());
  std::remove(path.c_str());
  EXPECT_FALSE(sink.write_json_file("no/such/dir/trace.json"));
}

}  // namespace
}  // namespace ocr::util

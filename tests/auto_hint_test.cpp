/// \file auto_hint_test.cpp
/// \brief The manifest-fed auto-mode hint (engine/auto_hint.hpp): counter
/// extraction from RunManifest JSON, the rate math, graceful degradation
/// on garbage input, and the engine's dispatch decision — a valid hint
/// overrides the static mean-batch heuristic, an invalid one falls back
/// to it, and the chosen dispatch stays bit-identical to serial.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "engine/auto_hint.hpp"
#include "engine/engine.hpp"
#include "levelb/router.hpp"
#include "util/rng.hpp"

namespace ocr::engine {
namespace {

using geom::Point;
using geom::Rect;
using levelb::BNet;
using levelb::LevelBResult;

TEST(AutoHint, ShardedManifestYieldsEscapeRate) {
  const std::string text =
      "{\"metrics\":{\"counters\":{\"engine.batches\": 12,"
      "\"engine.sharded_commits\": 90,\"engine.boundary_nets\": 10}}}";
  const EngineAutoHint hint = auto_hint_from_manifest_text(text);
  EXPECT_TRUE(hint.valid);
  EXPECT_TRUE(hint.measured_sharded);
  EXPECT_DOUBLE_EQ(hint.escape_rate, 0.10);
  EXPECT_DOUBLE_EQ(hint.abort_rate, 0.0);
}

TEST(AutoHint, SpeculativeManifestYieldsAbortRate) {
  const std::string text =
      "{\"engine.speculative_commits\": 75, "
      "\"engine.speculation_aborts\": 25}";
  const EngineAutoHint hint = auto_hint_from_manifest_text(text);
  EXPECT_TRUE(hint.valid);
  EXPECT_FALSE(hint.measured_sharded);
  EXPECT_DOUBLE_EQ(hint.abort_rate, 0.25);
}

TEST(AutoHint, ShardedWinsWhenBothPresent) {
  // A manifest can carry both families (the sharded committer recovers
  // escapes serially but never speculates); batches > 0 identifies the
  // dispatch that ran.
  const std::string text =
      "{\"engine.batches\":3,\"engine.sharded_commits\":30,"
      "\"engine.boundary_nets\":0,\"engine.speculative_commits\":5}";
  const EngineAutoHint hint = auto_hint_from_manifest_text(text);
  EXPECT_TRUE(hint.valid);
  EXPECT_TRUE(hint.measured_sharded);
  EXPECT_DOUBLE_EQ(hint.escape_rate, 0.0);
}

TEST(AutoHint, SerialOrGarbageTextIsInvalid) {
  EXPECT_FALSE(auto_hint_from_manifest_text("").valid);
  EXPECT_FALSE(auto_hint_from_manifest_text("not json at all").valid);
  // A serial run's manifest has the flow counters but no dispatch ones.
  EXPECT_FALSE(
      auto_hint_from_manifest_text("{\"flow.nets\": 100}").valid);
  // Zero-valued dispatch counters (parallel run that routed nothing)
  // carry no signal either.
  EXPECT_FALSE(auto_hint_from_manifest_text(
                   "{\"engine.batches\": 0, \"engine.sharded_commits\": 0}")
                   .valid);
  // Malformed number after the key reads as 0, not garbage.
  EXPECT_FALSE(
      auto_hint_from_manifest_text("{\"engine.batches\": \"oops\"}").valid);
}

TEST(AutoHint, WhitespaceAndColonVariantsParse) {
  const EngineAutoHint hint = auto_hint_from_manifest_text(
      "{\"engine.batches\"   :\n  7 , \"engine.sharded_commits\":3}");
  EXPECT_TRUE(hint.valid);
  EXPECT_TRUE(hint.measured_sharded);
}

TEST(AutoHint, LoadFromMissingFileIsInvalid) {
  EXPECT_FALSE(load_auto_hint("/nonexistent/path/manifest.json").valid);
}

TEST(AutoHint, LoadFromFileRoundTrips) {
  const std::string path =
      testing::TempDir() + "/auto_hint_test_manifest.json";
  {
    std::ofstream out(path);
    out << "{\"metrics\":{\"counters\":{\"engine.batches\": 4,"
           "\"engine.sharded_commits\": 18,"
           "\"engine.boundary_nets\": 2}}}";
  }
  const EngineAutoHint hint = load_auto_hint(path);
  EXPECT_TRUE(hint.valid);
  EXPECT_TRUE(hint.measured_sharded);
  EXPECT_DOUBLE_EQ(hint.escape_rate, 0.10);
  std::remove(path.c_str());
}

// ---- dispatch decision -------------------------------------------------

std::vector<BNet> local_nets(std::uint64_t seed, geom::Coord size,
                             int count, geom::Coord locality) {
  util::Rng rng(seed);
  std::vector<BNet> nets;
  for (int n = 0; n < count; ++n) {
    BNet net{n, {}};
    const Point center{rng.uniform_int(0, size - 1),
                       rng.uniform_int(0, size - 1)};
    for (int t = 0; t < 3; ++t) {
      const geom::Coord x = std::clamp<geom::Coord>(
          center.x + rng.uniform_int(0, 2 * locality) - locality, 0,
          size - 1);
      const geom::Coord y = std::clamp<geom::Coord>(
          center.y + rng.uniform_int(0, 2 * locality) - locality, 0,
          size - 1);
      net.terminals.push_back(Point{x, y});
    }
    nets.push_back(std::move(net));
  }
  return nets;
}

tig::TrackGrid make_grid(geom::Coord size) {
  return tig::TrackGrid::uniform(Rect(0, 0, size, size), 9, 11);
}

struct AutoRun {
  LevelBResult result;
  EngineStats stats;
};

AutoRun auto_route(const std::vector<BNet>& nets, EngineOptions options) {
  tig::TrackGrid grid = make_grid(2000);
  options.threads = 4;
  options.mode = EngineMode::kAuto;
  RoutingEngine engine(grid, options);
  AutoRun run{engine.route(nets), engine.stats()};
  return run;
}

TEST(AutoHint, CleanShardedHintRepeatsShardedDispatch) {
  const std::vector<BNet> nets = local_nets(11, 2000, 60, 80);
  EngineOptions options;
  options.auto_hint.valid = true;
  options.auto_hint.measured_sharded = true;
  options.auto_hint.escape_rate = 0.02;  // below the 0.10 ceiling
  const AutoRun run = auto_route(nets, options);
  EXPECT_STREQ(run.stats.auto_source, "manifest");
  EXPECT_STREQ(run.stats.mode, "sharded");
}

TEST(AutoHint, LeakyShardedHintSwitchesToSpeculative) {
  const std::vector<BNet> nets = local_nets(11, 2000, 60, 80);
  EngineOptions options;
  options.auto_hint.valid = true;
  options.auto_hint.measured_sharded = true;
  options.auto_hint.escape_rate = 0.50;  // half the nets escaped: bail
  const AutoRun run = auto_route(nets, options);
  EXPECT_STREQ(run.stats.auto_source, "manifest");
  EXPECT_STREQ(run.stats.mode, "speculative");
}

TEST(AutoHint, ContendedSpeculativeHintSwitchesToSharded) {
  const std::vector<BNet> nets = local_nets(11, 2000, 60, 80);
  EngineOptions options;
  options.auto_hint.valid = true;
  options.auto_hint.measured_sharded = false;
  options.auto_hint.abort_rate = 0.40;  // above the 0.10 floor
  const AutoRun run = auto_route(nets, options);
  EXPECT_STREQ(run.stats.auto_source, "manifest");
  EXPECT_STREQ(run.stats.mode, "sharded");
}

TEST(AutoHint, InvalidHintFallsBackToStaticHeuristic) {
  const std::vector<BNet> nets = local_nets(11, 2000, 60, 80);
  const AutoRun run = auto_route(nets, EngineOptions{});
  EXPECT_STREQ(run.stats.auto_source, "static");
  // Whichever dispatch the heuristic picked, the result is the serial
  // result (the engine's core contract).
  tig::TrackGrid grid = make_grid(2000);
  levelb::LevelBRouter serial(grid);
  EXPECT_EQ(run.result, serial.route(nets));
}

TEST(AutoHint, HintedDispatchStaysBitIdenticalToSerial) {
  const std::vector<BNet> nets = local_nets(29, 2000, 80, 70);
  tig::TrackGrid grid = make_grid(2000);
  levelb::LevelBRouter serial(grid);
  const LevelBResult expected = serial.route(nets);
  for (const bool measured_sharded : {true, false}) {
    EngineOptions options;
    options.auto_hint.valid = true;
    options.auto_hint.measured_sharded = measured_sharded;
    options.auto_hint.escape_rate = measured_sharded ? 0.0 : 0.0;
    options.auto_hint.abort_rate = measured_sharded ? 0.0 : 0.9;
    const AutoRun run = auto_route(nets, options);
    EXPECT_STREQ(run.stats.auto_source, "manifest");
    EXPECT_EQ(run.result, expected);
  }
}

}  // namespace
}  // namespace ocr::engine

file(REMOVE_RECURSE
  "CMakeFiles/macrocell_flow.dir/macrocell_flow.cpp.o"
  "CMakeFiles/macrocell_flow.dir/macrocell_flow.cpp.o.d"
  "macrocell_flow"
  "macrocell_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/macrocell_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

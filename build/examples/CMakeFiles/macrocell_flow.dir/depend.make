# Empty dependencies file for macrocell_flow.
# This may be replaced when dependencies are built.

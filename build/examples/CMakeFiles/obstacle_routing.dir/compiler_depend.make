# Empty compiler generated dependencies file for obstacle_routing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/obstacle_routing.dir/obstacle_routing.cpp.o"
  "CMakeFiles/obstacle_routing.dir/obstacle_routing.cpp.o.d"
  "obstacle_routing"
  "obstacle_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obstacle_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for channel_demo.
# This may be replaced when dependencies are built.

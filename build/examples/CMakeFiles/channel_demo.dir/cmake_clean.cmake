file(REMOVE_RECURSE
  "CMakeFiles/channel_demo.dir/channel_demo.cpp.o"
  "CMakeFiles/channel_demo.dir/channel_demo.cpp.o.d"
  "channel_demo"
  "channel_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

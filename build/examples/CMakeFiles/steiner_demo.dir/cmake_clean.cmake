file(REMOVE_RECURSE
  "CMakeFiles/steiner_demo.dir/steiner_demo.cpp.o"
  "CMakeFiles/steiner_demo.dir/steiner_demo.cpp.o.d"
  "steiner_demo"
  "steiner_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steiner_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

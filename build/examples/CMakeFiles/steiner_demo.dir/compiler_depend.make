# Empty compiler generated dependencies file for steiner_demo.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for coupling_aware.
# This may be replaced when dependencies are built.

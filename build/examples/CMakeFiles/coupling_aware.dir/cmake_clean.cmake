file(REMOVE_RECURSE
  "CMakeFiles/coupling_aware.dir/coupling_aware.cpp.o"
  "CMakeFiles/coupling_aware.dir/coupling_aware.cpp.o.d"
  "coupling_aware"
  "coupling_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coupling_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_data_test.dir/bench_data_test.cpp.o"
  "CMakeFiles/bench_data_test.dir/bench_data_test.cpp.o.d"
  "bench_data_test"
  "bench_data_test.pdb"
  "bench_data_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_data_test.
# This may be replaced when dependencies are built.

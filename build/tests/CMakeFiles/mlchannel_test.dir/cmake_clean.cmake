file(REMOVE_RECURSE
  "CMakeFiles/mlchannel_test.dir/mlchannel_test.cpp.o"
  "CMakeFiles/mlchannel_test.dir/mlchannel_test.cpp.o.d"
  "mlchannel_test"
  "mlchannel_test.pdb"
  "mlchannel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlchannel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

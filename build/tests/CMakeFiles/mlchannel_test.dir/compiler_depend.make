# Empty compiler generated dependencies file for mlchannel_test.
# This may be replaced when dependencies are built.

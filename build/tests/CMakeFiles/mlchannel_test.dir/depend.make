# Empty dependencies file for mlchannel_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/flow_check_test.dir/flow_check_test.cpp.o"
  "CMakeFiles/flow_check_test.dir/flow_check_test.cpp.o.d"
  "flow_check_test"
  "flow_check_test.pdb"
  "flow_check_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

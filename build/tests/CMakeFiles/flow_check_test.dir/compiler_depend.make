# Empty compiler generated dependencies file for flow_check_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for tig_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tig_test.dir/tig_test.cpp.o"
  "CMakeFiles/tig_test.dir/tig_test.cpp.o.d"
  "tig_test"
  "tig_test.pdb"
  "tig_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for levelb_ripup_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/levelb_ripup_test.dir/levelb_ripup_test.cpp.o"
  "CMakeFiles/levelb_ripup_test.dir/levelb_ripup_test.cpp.o.d"
  "levelb_ripup_test"
  "levelb_ripup_test.pdb"
  "levelb_ripup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/levelb_ripup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sample_data_test.dir/sample_data_test.cpp.o"
  "CMakeFiles/sample_data_test.dir/sample_data_test.cpp.o.d"
  "sample_data_test"
  "sample_data_test.pdb"
  "sample_data_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sample_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sample_data_test.
# This may be replaced when dependencies are built.

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for levelb_optimize_test.

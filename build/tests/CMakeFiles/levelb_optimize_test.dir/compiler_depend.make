# Empty compiler generated dependencies file for levelb_optimize_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/levelb_optimize_test.dir/levelb_optimize_test.cpp.o"
  "CMakeFiles/levelb_optimize_test.dir/levelb_optimize_test.cpp.o.d"
  "levelb_optimize_test"
  "levelb_optimize_test.pdb"
  "levelb_optimize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/levelb_optimize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

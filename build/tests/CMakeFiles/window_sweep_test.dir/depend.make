# Empty dependencies file for window_sweep_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for channel_problem_test.
# This may be replaced when dependencies are built.

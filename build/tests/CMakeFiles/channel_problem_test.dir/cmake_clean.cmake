file(REMOVE_RECURSE
  "CMakeFiles/channel_problem_test.dir/channel_problem_test.cpp.o"
  "CMakeFiles/channel_problem_test.dir/channel_problem_test.cpp.o.d"
  "channel_problem_test"
  "channel_problem_test.pdb"
  "channel_problem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_problem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for channel_left_edge_test.
# This may be replaced when dependencies are built.

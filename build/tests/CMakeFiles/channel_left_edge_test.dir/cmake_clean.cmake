file(REMOVE_RECURSE
  "CMakeFiles/channel_left_edge_test.dir/channel_left_edge_test.cpp.o"
  "CMakeFiles/channel_left_edge_test.dir/channel_left_edge_test.cpp.o.d"
  "channel_left_edge_test"
  "channel_left_edge_test.pdb"
  "channel_left_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_left_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

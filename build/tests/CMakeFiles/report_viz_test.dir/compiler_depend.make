# Empty compiler generated dependencies file for report_viz_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/report_viz_test.dir/report_viz_test.cpp.o"
  "CMakeFiles/report_viz_test.dir/report_viz_test.cpp.o.d"
  "report_viz_test"
  "report_viz_test.pdb"
  "report_viz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_viz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

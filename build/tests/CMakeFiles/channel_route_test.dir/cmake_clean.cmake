file(REMOVE_RECURSE
  "CMakeFiles/channel_route_test.dir/channel_route_test.cpp.o"
  "CMakeFiles/channel_route_test.dir/channel_route_test.cpp.o.d"
  "channel_route_test"
  "channel_route_test.pdb"
  "channel_route_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_route_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

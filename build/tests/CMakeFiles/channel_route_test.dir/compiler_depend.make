# Empty compiler generated dependencies file for channel_route_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for levelb_router_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/levelb_router_test.dir/levelb_router_test.cpp.o"
  "CMakeFiles/levelb_router_test.dir/levelb_router_test.cpp.o.d"
  "levelb_router_test"
  "levelb_router_test.pdb"
  "levelb_router_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/levelb_router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

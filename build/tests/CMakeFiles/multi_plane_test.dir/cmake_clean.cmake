file(REMOVE_RECURSE
  "CMakeFiles/multi_plane_test.dir/multi_plane_test.cpp.o"
  "CMakeFiles/multi_plane_test.dir/multi_plane_test.cpp.o.d"
  "multi_plane_test"
  "multi_plane_test.pdb"
  "multi_plane_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_plane_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

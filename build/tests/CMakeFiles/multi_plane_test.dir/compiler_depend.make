# Empty compiler generated dependencies file for multi_plane_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for route_io_test.
# This may be replaced when dependencies are built.

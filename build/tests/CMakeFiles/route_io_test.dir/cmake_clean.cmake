file(REMOVE_RECURSE
  "CMakeFiles/route_io_test.dir/route_io_test.cpp.o"
  "CMakeFiles/route_io_test.dir/route_io_test.cpp.o.d"
  "route_io_test"
  "route_io_test.pdb"
  "route_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for maze_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for channel_yk_test.
# This may be replaced when dependencies are built.

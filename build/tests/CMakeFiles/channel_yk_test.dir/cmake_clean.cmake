file(REMOVE_RECURSE
  "CMakeFiles/channel_yk_test.dir/channel_yk_test.cpp.o"
  "CMakeFiles/channel_yk_test.dir/channel_yk_test.cpp.o.d"
  "channel_yk_test"
  "channel_yk_test.pdb"
  "channel_yk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_yk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/hightower_test.dir/hightower_test.cpp.o"
  "CMakeFiles/hightower_test.dir/hightower_test.cpp.o.d"
  "hightower_test"
  "hightower_test.pdb"
  "hightower_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hightower_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for hightower_test.
# This may be replaced when dependencies are built.

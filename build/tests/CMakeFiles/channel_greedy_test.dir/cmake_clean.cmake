file(REMOVE_RECURSE
  "CMakeFiles/channel_greedy_test.dir/channel_greedy_test.cpp.o"
  "CMakeFiles/channel_greedy_test.dir/channel_greedy_test.cpp.o.d"
  "channel_greedy_test"
  "channel_greedy_test.pdb"
  "channel_greedy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_greedy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for channel_greedy_test.
# This may be replaced when dependencies are built.

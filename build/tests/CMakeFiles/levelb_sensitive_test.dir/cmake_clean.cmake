file(REMOVE_RECURSE
  "CMakeFiles/levelb_sensitive_test.dir/levelb_sensitive_test.cpp.o"
  "CMakeFiles/levelb_sensitive_test.dir/levelb_sensitive_test.cpp.o.d"
  "levelb_sensitive_test"
  "levelb_sensitive_test.pdb"
  "levelb_sensitive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/levelb_sensitive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for levelb_sensitive_test.
# This may be replaced when dependencies are built.

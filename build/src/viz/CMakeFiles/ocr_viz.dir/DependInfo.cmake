
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viz/svg.cpp" "src/viz/CMakeFiles/ocr_viz.dir/svg.cpp.o" "gcc" "src/viz/CMakeFiles/ocr_viz.dir/svg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/ocr_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/levelb/CMakeFiles/ocr_levelb.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/ocr_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ocr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/steiner/CMakeFiles/ocr_steiner.dir/DependInfo.cmake"
  "/root/repo/build/src/global/CMakeFiles/ocr_global.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/ocr_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/mlchannel/CMakeFiles/ocr_mlchannel.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/ocr_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/tig/CMakeFiles/ocr_tig.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/ocr_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/ocr_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

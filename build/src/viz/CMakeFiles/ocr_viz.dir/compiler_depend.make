# Empty compiler generated dependencies file for ocr_viz.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ocr_viz.dir/svg.cpp.o"
  "CMakeFiles/ocr_viz.dir/svg.cpp.o.d"
  "libocr_viz.a"
  "libocr_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocr_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

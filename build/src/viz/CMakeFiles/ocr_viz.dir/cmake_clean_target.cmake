file(REMOVE_RECURSE
  "libocr_viz.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ocr_levelb.dir/cost.cpp.o"
  "CMakeFiles/ocr_levelb.dir/cost.cpp.o.d"
  "CMakeFiles/ocr_levelb.dir/figure1.cpp.o"
  "CMakeFiles/ocr_levelb.dir/figure1.cpp.o.d"
  "CMakeFiles/ocr_levelb.dir/multi_plane.cpp.o"
  "CMakeFiles/ocr_levelb.dir/multi_plane.cpp.o.d"
  "CMakeFiles/ocr_levelb.dir/optimize.cpp.o"
  "CMakeFiles/ocr_levelb.dir/optimize.cpp.o.d"
  "CMakeFiles/ocr_levelb.dir/path.cpp.o"
  "CMakeFiles/ocr_levelb.dir/path.cpp.o.d"
  "CMakeFiles/ocr_levelb.dir/path_finder.cpp.o"
  "CMakeFiles/ocr_levelb.dir/path_finder.cpp.o.d"
  "CMakeFiles/ocr_levelb.dir/router.cpp.o"
  "CMakeFiles/ocr_levelb.dir/router.cpp.o.d"
  "libocr_levelb.a"
  "libocr_levelb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocr_levelb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ocr_levelb.
# This may be replaced when dependencies are built.

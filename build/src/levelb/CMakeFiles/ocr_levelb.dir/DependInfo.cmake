
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/levelb/cost.cpp" "src/levelb/CMakeFiles/ocr_levelb.dir/cost.cpp.o" "gcc" "src/levelb/CMakeFiles/ocr_levelb.dir/cost.cpp.o.d"
  "/root/repo/src/levelb/figure1.cpp" "src/levelb/CMakeFiles/ocr_levelb.dir/figure1.cpp.o" "gcc" "src/levelb/CMakeFiles/ocr_levelb.dir/figure1.cpp.o.d"
  "/root/repo/src/levelb/multi_plane.cpp" "src/levelb/CMakeFiles/ocr_levelb.dir/multi_plane.cpp.o" "gcc" "src/levelb/CMakeFiles/ocr_levelb.dir/multi_plane.cpp.o.d"
  "/root/repo/src/levelb/optimize.cpp" "src/levelb/CMakeFiles/ocr_levelb.dir/optimize.cpp.o" "gcc" "src/levelb/CMakeFiles/ocr_levelb.dir/optimize.cpp.o.d"
  "/root/repo/src/levelb/path.cpp" "src/levelb/CMakeFiles/ocr_levelb.dir/path.cpp.o" "gcc" "src/levelb/CMakeFiles/ocr_levelb.dir/path.cpp.o.d"
  "/root/repo/src/levelb/path_finder.cpp" "src/levelb/CMakeFiles/ocr_levelb.dir/path_finder.cpp.o" "gcc" "src/levelb/CMakeFiles/ocr_levelb.dir/path_finder.cpp.o.d"
  "/root/repo/src/levelb/router.cpp" "src/levelb/CMakeFiles/ocr_levelb.dir/router.cpp.o" "gcc" "src/levelb/CMakeFiles/ocr_levelb.dir/router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tig/CMakeFiles/ocr_tig.dir/DependInfo.cmake"
  "/root/repo/build/src/steiner/CMakeFiles/ocr_steiner.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/ocr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ocr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

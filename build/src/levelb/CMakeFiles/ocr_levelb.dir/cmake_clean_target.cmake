file(REMOVE_RECURSE
  "libocr_levelb.a"
)

# CMake generated Testfile for 
# Source directory: /root/repo/src/levelb
# Build directory: /root/repo/build/src/levelb
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

# Empty compiler generated dependencies file for ocr_util.
# This may be replaced when dependencies are built.

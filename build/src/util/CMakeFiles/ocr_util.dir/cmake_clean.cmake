file(REMOVE_RECURSE
  "CMakeFiles/ocr_util.dir/assert.cpp.o"
  "CMakeFiles/ocr_util.dir/assert.cpp.o.d"
  "CMakeFiles/ocr_util.dir/log.cpp.o"
  "CMakeFiles/ocr_util.dir/log.cpp.o.d"
  "CMakeFiles/ocr_util.dir/rng.cpp.o"
  "CMakeFiles/ocr_util.dir/rng.cpp.o.d"
  "CMakeFiles/ocr_util.dir/str.cpp.o"
  "CMakeFiles/ocr_util.dir/str.cpp.o.d"
  "CMakeFiles/ocr_util.dir/table.cpp.o"
  "CMakeFiles/ocr_util.dir/table.cpp.o.d"
  "libocr_util.a"
  "libocr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

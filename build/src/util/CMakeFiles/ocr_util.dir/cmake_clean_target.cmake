file(REMOVE_RECURSE
  "libocr_util.a"
)

file(REMOVE_RECURSE
  "libocr_partition.a"
)

# Empty dependencies file for ocr_partition.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ocr_partition.dir/partition.cpp.o"
  "CMakeFiles/ocr_partition.dir/partition.cpp.o.d"
  "libocr_partition.a"
  "libocr_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocr_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ocr_steiner.dir/exact.cpp.o"
  "CMakeFiles/ocr_steiner.dir/exact.cpp.o.d"
  "CMakeFiles/ocr_steiner.dir/rmst.cpp.o"
  "CMakeFiles/ocr_steiner.dir/rmst.cpp.o.d"
  "CMakeFiles/ocr_steiner.dir/rst.cpp.o"
  "CMakeFiles/ocr_steiner.dir/rst.cpp.o.d"
  "libocr_steiner.a"
  "libocr_steiner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocr_steiner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/steiner/exact.cpp" "src/steiner/CMakeFiles/ocr_steiner.dir/exact.cpp.o" "gcc" "src/steiner/CMakeFiles/ocr_steiner.dir/exact.cpp.o.d"
  "/root/repo/src/steiner/rmst.cpp" "src/steiner/CMakeFiles/ocr_steiner.dir/rmst.cpp.o" "gcc" "src/steiner/CMakeFiles/ocr_steiner.dir/rmst.cpp.o.d"
  "/root/repo/src/steiner/rst.cpp" "src/steiner/CMakeFiles/ocr_steiner.dir/rst.cpp.o" "gcc" "src/steiner/CMakeFiles/ocr_steiner.dir/rst.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/ocr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ocr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

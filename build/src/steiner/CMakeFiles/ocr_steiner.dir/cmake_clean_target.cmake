file(REMOVE_RECURSE
  "libocr_steiner.a"
)

# Empty dependencies file for ocr_steiner.
# This may be replaced when dependencies are built.

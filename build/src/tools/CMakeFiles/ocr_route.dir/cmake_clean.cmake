file(REMOVE_RECURSE
  "CMakeFiles/ocr_route.dir/ocr_route.cpp.o"
  "CMakeFiles/ocr_route.dir/ocr_route.cpp.o.d"
  "ocr_route"
  "ocr_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocr_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ocr_route.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ocr_mlchannel.dir/multilayer.cpp.o"
  "CMakeFiles/ocr_mlchannel.dir/multilayer.cpp.o.d"
  "libocr_mlchannel.a"
  "libocr_mlchannel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocr_mlchannel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

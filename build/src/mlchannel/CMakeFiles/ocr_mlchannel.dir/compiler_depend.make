# Empty compiler generated dependencies file for ocr_mlchannel.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libocr_mlchannel.a"
)

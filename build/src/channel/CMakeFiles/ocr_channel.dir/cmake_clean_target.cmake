file(REMOVE_RECURSE
  "libocr_channel.a"
)

# Empty compiler generated dependencies file for ocr_channel.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/greedy.cpp" "src/channel/CMakeFiles/ocr_channel.dir/greedy.cpp.o" "gcc" "src/channel/CMakeFiles/ocr_channel.dir/greedy.cpp.o.d"
  "/root/repo/src/channel/left_edge.cpp" "src/channel/CMakeFiles/ocr_channel.dir/left_edge.cpp.o" "gcc" "src/channel/CMakeFiles/ocr_channel.dir/left_edge.cpp.o.d"
  "/root/repo/src/channel/problem.cpp" "src/channel/CMakeFiles/ocr_channel.dir/problem.cpp.o" "gcc" "src/channel/CMakeFiles/ocr_channel.dir/problem.cpp.o.d"
  "/root/repo/src/channel/route.cpp" "src/channel/CMakeFiles/ocr_channel.dir/route.cpp.o" "gcc" "src/channel/CMakeFiles/ocr_channel.dir/route.cpp.o.d"
  "/root/repo/src/channel/yoshimura_kuh.cpp" "src/channel/CMakeFiles/ocr_channel.dir/yoshimura_kuh.cpp.o" "gcc" "src/channel/CMakeFiles/ocr_channel.dir/yoshimura_kuh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/ocr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ocr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ocr_channel.dir/greedy.cpp.o"
  "CMakeFiles/ocr_channel.dir/greedy.cpp.o.d"
  "CMakeFiles/ocr_channel.dir/left_edge.cpp.o"
  "CMakeFiles/ocr_channel.dir/left_edge.cpp.o.d"
  "CMakeFiles/ocr_channel.dir/problem.cpp.o"
  "CMakeFiles/ocr_channel.dir/problem.cpp.o.d"
  "CMakeFiles/ocr_channel.dir/route.cpp.o"
  "CMakeFiles/ocr_channel.dir/route.cpp.o.d"
  "CMakeFiles/ocr_channel.dir/yoshimura_kuh.cpp.o"
  "CMakeFiles/ocr_channel.dir/yoshimura_kuh.cpp.o.d"
  "libocr_channel.a"
  "libocr_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocr_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libocr_floorplan.a"
)

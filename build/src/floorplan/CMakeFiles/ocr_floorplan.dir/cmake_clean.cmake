file(REMOVE_RECURSE
  "CMakeFiles/ocr_floorplan.dir/macro_layout.cpp.o"
  "CMakeFiles/ocr_floorplan.dir/macro_layout.cpp.o.d"
  "libocr_floorplan.a"
  "libocr_floorplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocr_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

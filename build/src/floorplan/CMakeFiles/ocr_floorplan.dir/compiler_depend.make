# Empty compiler generated dependencies file for ocr_floorplan.
# This may be replaced when dependencies are built.

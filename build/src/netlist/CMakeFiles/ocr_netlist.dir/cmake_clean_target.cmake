file(REMOVE_RECURSE
  "libocr_netlist.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ocr_netlist.dir/layout.cpp.o"
  "CMakeFiles/ocr_netlist.dir/layout.cpp.o.d"
  "CMakeFiles/ocr_netlist.dir/stats.cpp.o"
  "CMakeFiles/ocr_netlist.dir/stats.cpp.o.d"
  "libocr_netlist.a"
  "libocr_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocr_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ocr_netlist.
# This may be replaced when dependencies are built.

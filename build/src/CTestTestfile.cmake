# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("geom")
subdirs("netlist")
subdirs("steiner")
subdirs("channel")
subdirs("tig")
subdirs("levelb")
subdirs("maze")
subdirs("partition")
subdirs("floorplan")
subdirs("bench_data")
subdirs("global")
subdirs("mlchannel")
subdirs("flow")
subdirs("report")
subdirs("viz")
subdirs("io")
subdirs("tools")

file(REMOVE_RECURSE
  "CMakeFiles/ocr_io.dir/layout_io.cpp.o"
  "CMakeFiles/ocr_io.dir/layout_io.cpp.o.d"
  "CMakeFiles/ocr_io.dir/route_io.cpp.o"
  "CMakeFiles/ocr_io.dir/route_io.cpp.o.d"
  "libocr_io.a"
  "libocr_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocr_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

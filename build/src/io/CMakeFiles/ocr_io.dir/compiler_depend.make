# Empty compiler generated dependencies file for ocr_io.
# This may be replaced when dependencies are built.

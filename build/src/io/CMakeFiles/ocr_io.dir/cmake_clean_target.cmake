file(REMOVE_RECURSE
  "libocr_io.a"
)

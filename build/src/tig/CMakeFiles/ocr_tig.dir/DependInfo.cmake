
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tig/congestion.cpp" "src/tig/CMakeFiles/ocr_tig.dir/congestion.cpp.o" "gcc" "src/tig/CMakeFiles/ocr_tig.dir/congestion.cpp.o.d"
  "/root/repo/src/tig/graph.cpp" "src/tig/CMakeFiles/ocr_tig.dir/graph.cpp.o" "gcc" "src/tig/CMakeFiles/ocr_tig.dir/graph.cpp.o.d"
  "/root/repo/src/tig/track_grid.cpp" "src/tig/CMakeFiles/ocr_tig.dir/track_grid.cpp.o" "gcc" "src/tig/CMakeFiles/ocr_tig.dir/track_grid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/ocr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ocr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for ocr_tig.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libocr_tig.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ocr_tig.dir/congestion.cpp.o"
  "CMakeFiles/ocr_tig.dir/congestion.cpp.o.d"
  "CMakeFiles/ocr_tig.dir/graph.cpp.o"
  "CMakeFiles/ocr_tig.dir/graph.cpp.o.d"
  "CMakeFiles/ocr_tig.dir/track_grid.cpp.o"
  "CMakeFiles/ocr_tig.dir/track_grid.cpp.o.d"
  "libocr_tig.a"
  "libocr_tig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocr_tig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

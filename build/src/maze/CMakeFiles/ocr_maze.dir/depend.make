# Empty dependencies file for ocr_maze.
# This may be replaced when dependencies are built.

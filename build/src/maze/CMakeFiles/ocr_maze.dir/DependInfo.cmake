
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/maze/hightower.cpp" "src/maze/CMakeFiles/ocr_maze.dir/hightower.cpp.o" "gcc" "src/maze/CMakeFiles/ocr_maze.dir/hightower.cpp.o.d"
  "/root/repo/src/maze/lee.cpp" "src/maze/CMakeFiles/ocr_maze.dir/lee.cpp.o" "gcc" "src/maze/CMakeFiles/ocr_maze.dir/lee.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tig/CMakeFiles/ocr_tig.dir/DependInfo.cmake"
  "/root/repo/build/src/levelb/CMakeFiles/ocr_levelb.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/ocr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ocr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/steiner/CMakeFiles/ocr_steiner.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libocr_maze.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ocr_maze.dir/hightower.cpp.o"
  "CMakeFiles/ocr_maze.dir/hightower.cpp.o.d"
  "CMakeFiles/ocr_maze.dir/lee.cpp.o"
  "CMakeFiles/ocr_maze.dir/lee.cpp.o.d"
  "libocr_maze.a"
  "libocr_maze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocr_maze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libocr_report.a"
)

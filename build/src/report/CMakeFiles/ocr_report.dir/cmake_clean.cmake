file(REMOVE_RECURSE
  "CMakeFiles/ocr_report.dir/tables.cpp.o"
  "CMakeFiles/ocr_report.dir/tables.cpp.o.d"
  "libocr_report.a"
  "libocr_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocr_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ocr_report.
# This may be replaced when dependencies are built.

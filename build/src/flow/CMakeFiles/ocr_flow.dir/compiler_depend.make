# Empty compiler generated dependencies file for ocr_flow.
# This may be replaced when dependencies are built.

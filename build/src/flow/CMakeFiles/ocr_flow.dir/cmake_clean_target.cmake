file(REMOVE_RECURSE
  "libocr_flow.a"
)

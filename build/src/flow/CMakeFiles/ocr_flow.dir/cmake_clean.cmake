file(REMOVE_RECURSE
  "CMakeFiles/ocr_flow.dir/check.cpp.o"
  "CMakeFiles/ocr_flow.dir/check.cpp.o.d"
  "CMakeFiles/ocr_flow.dir/flow.cpp.o"
  "CMakeFiles/ocr_flow.dir/flow.cpp.o.d"
  "libocr_flow.a"
  "libocr_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocr_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

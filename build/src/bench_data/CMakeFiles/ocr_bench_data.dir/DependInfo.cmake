
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bench_data/synthetic.cpp" "src/bench_data/CMakeFiles/ocr_bench_data.dir/synthetic.cpp.o" "gcc" "src/bench_data/CMakeFiles/ocr_bench_data.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/floorplan/CMakeFiles/ocr_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/ocr_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ocr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/ocr_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for ocr_bench_data.
# This may be replaced when dependencies are built.

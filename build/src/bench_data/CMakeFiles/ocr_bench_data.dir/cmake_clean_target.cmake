file(REMOVE_RECURSE
  "libocr_bench_data.a"
)

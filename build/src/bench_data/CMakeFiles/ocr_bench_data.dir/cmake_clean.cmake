file(REMOVE_RECURSE
  "CMakeFiles/ocr_bench_data.dir/synthetic.cpp.o"
  "CMakeFiles/ocr_bench_data.dir/synthetic.cpp.o.d"
  "libocr_bench_data.a"
  "libocr_bench_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocr_bench_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ocr_geom.dir/interval.cpp.o"
  "CMakeFiles/ocr_geom.dir/interval.cpp.o.d"
  "CMakeFiles/ocr_geom.dir/interval_set.cpp.o"
  "CMakeFiles/ocr_geom.dir/interval_set.cpp.o.d"
  "CMakeFiles/ocr_geom.dir/layers.cpp.o"
  "CMakeFiles/ocr_geom.dir/layers.cpp.o.d"
  "CMakeFiles/ocr_geom.dir/point.cpp.o"
  "CMakeFiles/ocr_geom.dir/point.cpp.o.d"
  "CMakeFiles/ocr_geom.dir/rect.cpp.o"
  "CMakeFiles/ocr_geom.dir/rect.cpp.o.d"
  "libocr_geom.a"
  "libocr_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocr_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

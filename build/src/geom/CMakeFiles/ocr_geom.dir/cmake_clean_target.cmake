file(REMOVE_RECURSE
  "libocr_geom.a"
)

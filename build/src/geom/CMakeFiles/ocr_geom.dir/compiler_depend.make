# Empty compiler generated dependencies file for ocr_geom.
# This may be replaced when dependencies are built.

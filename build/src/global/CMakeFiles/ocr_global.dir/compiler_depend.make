# Empty compiler generated dependencies file for ocr_global.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ocr_global.dir/global_router.cpp.o"
  "CMakeFiles/ocr_global.dir/global_router.cpp.o.d"
  "libocr_global.a"
  "libocr_global.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocr_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

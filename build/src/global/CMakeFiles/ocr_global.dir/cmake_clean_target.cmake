file(REMOVE_RECURSE
  "libocr_global.a"
)

file(REMOVE_RECURSE
  "../bench/bench_ablation_channel"
  "../bench/bench_ablation_channel.pdb"
  "CMakeFiles/bench_ablation_channel.dir/bench_ablation_channel.cpp.o"
  "CMakeFiles/bench_ablation_channel.dir/bench_ablation_channel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

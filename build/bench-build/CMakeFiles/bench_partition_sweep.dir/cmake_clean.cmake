file(REMOVE_RECURSE
  "../bench/bench_partition_sweep"
  "../bench/bench_partition_sweep.pdb"
  "CMakeFiles/bench_partition_sweep.dir/bench_partition_sweep.cpp.o"
  "CMakeFiles/bench_partition_sweep.dir/bench_partition_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partition_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_ablation_planes"
  "../bench/bench_ablation_planes.pdb"
  "CMakeFiles/bench_ablation_planes.dir/bench_ablation_planes.cpp.o"
  "CMakeFiles/bench_ablation_planes.dir/bench_ablation_planes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_planes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ablation_planes.
# This may be replaced when dependencies are built.

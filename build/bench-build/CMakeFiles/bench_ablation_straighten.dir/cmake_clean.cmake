file(REMOVE_RECURSE
  "../bench/bench_ablation_straighten"
  "../bench/bench_ablation_straighten.pdb"
  "CMakeFiles/bench_ablation_straighten.dir/bench_ablation_straighten.cpp.o"
  "CMakeFiles/bench_ablation_straighten.dir/bench_ablation_straighten.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_straighten.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ablation_straighten.
# This may be replaced when dependencies are built.

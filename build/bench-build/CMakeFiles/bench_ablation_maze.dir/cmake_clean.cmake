file(REMOVE_RECURSE
  "../bench/bench_ablation_maze"
  "../bench/bench_ablation_maze.pdb"
  "CMakeFiles/bench_ablation_maze.dir/bench_ablation_maze.cpp.o"
  "CMakeFiles/bench_ablation_maze.dir/bench_ablation_maze.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_maze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_maze.
# This may be replaced when dependencies are built.

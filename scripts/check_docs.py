#!/usr/bin/env python3
"""Markdown link checker for the docs tree.

Validates, without any third-party dependency:

* every relative markdown link target `[text](path)` in docs/*.md,
  README.md and DESIGN.md resolves to a file or directory in the repo
  (anchors and external http(s)/mailto links are skipped);
* every `path/to/file.ext`-looking inline-code reference to a source
  file (src/, tests/, bench/, scripts/, data/, docs/) exists.

Run from the repository root: python3 scripts/check_docs.py
"""

import os
import re
import sys

DOC_FILES = ["README.md", "DESIGN.md"] + sorted(
    os.path.join("docs", f) for f in os.listdir("docs") if f.endswith(".md")
)

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# `src/levelb/router.cpp`-style references inside backticks.
CODE_REF_RE = re.compile(
    r"`((?:src|tests|bench|scripts|data|docs)/[A-Za-z0-9_./-]+"
    r"\.(?:hpp|cpp|py|md|oclay|yml|txt))`"
)


def check_file(path: str) -> list:
    errors = []
    with open(path, encoding="utf-8") as f:
        text = f.read()
    base = os.path.dirname(path)

    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        resolved = os.path.normpath(os.path.join(base, target))
        if not os.path.exists(resolved):
            errors.append(f"{path}: broken link -> {match.group(1)}")

    for match in CODE_REF_RE.finditer(text):
        ref = match.group(1)
        # Code refs are repo-root-relative regardless of the doc's location.
        if not os.path.exists(ref):
            errors.append(f"{path}: missing file reference -> `{ref}`")

    return errors


def main() -> int:
    if not os.path.isdir("docs"):
        print("error: run from the repository root (docs/ not found)")
        return 2
    all_errors = []
    for doc in DOC_FILES:
        all_errors.extend(check_file(doc))
    for err in all_errors:
        print(err)
    checked = len(DOC_FILES)
    if all_errors:
        print(f"\n{len(all_errors)} problem(s) across {checked} file(s)")
        return 1
    print(f"all links OK across {checked} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

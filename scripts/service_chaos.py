#!/usr/bin/env python3
"""Crash-recovery chaos harness for the ocr_served daemon.

Drives a journal-backed daemon through repeated SIGKILLs and asserts the
exactly-once contract of docs/SERVICE.md:

* a job stream is fed to `ocr_served --journal`; mid-stream the daemon is
  SIGKILLed (no drain, no flush — the worst crash) and restarted with
  `--recover`, which replays the journal and re-runs unfinished jobs;
* after N kill/restart cycles plus a final run, every job id has been
  answered at least once, at most one response per id is a fresh
  execution (the rest carry `"replayed":true`), and all responses for an
  id agree on the routed digest (wire_length/vias/status);
* the journal holds exactly one terminal record per id, and the recovery
  dedupe path answers resent ids without re-executing them;
* a final SIGTERM drain exits 0 and leaves a journal whose last record is
  a clean `drain` with zero unfinished jobs.

Usage: python3 scripts/service_chaos.py BUILD_DIR [--jobs N] [--kills N]
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time


def check(cond, message):
    if not cond:
        print(f"FAIL: {message}")
        sys.exit(1)


def parse_responses(text):
    responses = []
    for line in text.splitlines():
        if line.strip():
            responses.append(json.loads(line))
    return responses


def read_journal(path):
    records = []
    if not os.path.exists(path):
        return records
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                records.append({"event": "__torn__", "raw": line})
    return records


def spawn(served, journal, queue_limit, extra=()):
    return subprocess.Popen(
        [served, "--journal", journal, "--workers", "2",
         "--queue-limit", str(queue_limit), *extra],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True)


def feed(proc, requests):
    for request in requests:
        proc.stdin.write(json.dumps(request) + "\n")
    proc.stdin.flush()


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("build_dir")
    parser.add_argument("--jobs", type=int, default=104,
                        help="total job ids in the stream")
    parser.add_argument("--kills", type=int, default=3,
                        help="SIGKILL/restart cycles before the final run")
    args = parser.parse_args()

    served = os.path.join(args.build_dir, "src", "tools", "ocr_served")
    check(os.path.exists(served), f"missing binary {served}")

    all_ids = [f"chaos-{i}" for i in range(args.jobs)]
    requests = {i: {"id": i, "example": "ami33"} for i in all_ids}

    workdir = tempfile.mkdtemp(prefix="ocr_chaos_")
    journal = os.path.join(workdir, "journal.jsonl")

    responses = {}   # id -> list of decoded response objects
    kill_waves = []  # ids fed before each kill, for the report

    def record(batch):
        for response in batch:
            responses.setdefault(response["id"], []).append(response)

    def unanswered():
        return [i for i in all_ids if i not in responses]

    # --- N crash cycles: feed a slice, kill mid-flight, recover. --------
    pending = list(all_ids)
    for cycle in range(args.kills):
        check(pending, "stream exhausted before the kill budget")
        recover = ["--recover"] if cycle > 0 else []
        proc = spawn(served, journal, args.jobs + 8, recover)
        slice_size = max(1, len(pending) // (args.kills - cycle + 1))
        wave = pending[:slice_size]
        feed(proc, [requests[i] for i in wave])
        kill_waves.append(len(wave))
        # Let some jobs finish so the kill lands with a mix of completed,
        # in-flight and queued work — the interesting recovery states.
        # (~40 ms per ami33 job on 2 workers: a fraction of the wave.)
        time.sleep(0.15)
        proc.kill()  # SIGKILL: no drain, no journal flush
        out, _ = proc.communicate(timeout=60)
        batch = parse_responses(out)
        record(batch)
        answered = {r["id"] for r in batch}
        pending = [i for i in pending if i not in answered]

    # --- Final run: recover, resend everything unanswered, drain. -------
    proc = spawn(served, journal, args.jobs + 8, ["--recover"])
    resend = unanswered()
    stream = "".join(json.dumps(requests[i]) + "\n" for i in resend)
    out, err = proc.communicate(input=stream, timeout=600)  # EOF: full drain
    check(proc.returncode == 0,
          f"final daemon exit {proc.returncode}, stderr: {err[-2000:]}")
    record(parse_responses(out))

    # --- Exactly-once: every id answered, digests agree, at most one
    # fresh execution per id. -------------------------------------------
    check(not unanswered(), f"unanswered ids: {unanswered()[:10]}")
    replay_count = 0
    for job_id in all_ids:
        answers = responses[job_id]
        fresh = [r for r in answers if not r.get("replayed", False)]
        replays = [r for r in answers if r.get("replayed", False)]
        replay_count += len(replays)
        check(len(fresh) <= 1,
              f"{job_id} executed {len(fresh)} times (exactly-once broken)")
        digests = {(r["status"], r["wire_length"], r["vias"])
                   for r in answers}
        check(len(digests) == 1,
              f"{job_id} answers disagree across crashes: {digests}")
        status, wire, _ = next(iter(digests))
        check(status == "clean" and wire > 0,
              f"{job_id} did not route cleanly: {answers[0]}")

    # --- Journal: exactly one terminal record per id, and responses were
    # only ever emitted for journaled outcomes. --------------------------
    records = read_journal(journal)
    torn = [r for r in records if r["event"] == "__torn__"]
    terminals = {}
    for r in records:
        if r["event"] in ("completed", "failed"):
            terminals[r["id"]] = terminals.get(r["id"], 0) + 1
    check(set(terminals) >= set(all_ids),
          f"ids missing a terminal record: "
          f"{sorted(set(all_ids) - set(terminals))[:10]}")
    multi = {i: n for i, n in terminals.items() if n > 1}
    check(not multi, f"ids with duplicate terminal records: {multi}")

    # --- SIGTERM drain: clean exit, clean journal. ----------------------
    proc = spawn(served, journal, args.jobs + 8,
                 ["--recover", "--drain-deadline-ms", "30000"])
    feed(proc, [{"id": "drain-probe", "example": "ami33"}])
    time.sleep(0.3)
    proc.send_signal(signal.SIGTERM)
    out, err = proc.communicate(timeout=120)
    check(proc.returncode == 0,
          f"SIGTERM drain exit {proc.returncode}, stderr: {err[-2000:]}")
    final = read_journal(journal)
    check(final and final[-1]["event"] == "drain"
          and final[-1]["unfinished"] == 0,
          f"journal does not end in a clean drain: {final[-1:]}" )

    print(f"service chaos OK: {args.jobs} ids exactly-once across "
          f"{args.kills} SIGKILLs (waves {kill_waves}), "
          f"{replay_count} replayed responses, {len(torn)} torn journal "
          f"lines tolerated, SIGTERM drain clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""End-to-end smoke test for the ocr_served daemon.

Pipes a mixed JSONL job stream through the daemon and asserts the
service contract of docs/SERVICE.md:

* every request line gets exactly one well-formed response line with the
  mandatory fields, and the daemon exits 0 after draining on EOF;
* statuses map to the exit-class contract (clean=0, failed=1,
  rejected=2, partial=3) and the stream exercises all four;
* the over-deadline job reports deadline_fired, the fault-injected job
  reports faults_injected, and neither leaks into the clean jobs;
* daemon results are deterministic and identical to ocr_route on the
  same spec (wire_length/vias compared against --metrics-json);
* under a 1-deep queue a burst is partially rejected — immediately,
  never hung or dropped.

Usage: python3 scripts/service_smoke.py BUILD_DIR [--jobs N]
"""

import argparse
import json
import os
import subprocess
import sys

MANDATORY_FIELDS = [
    "id", "status", "exit_class", "queue_ms", "run_ms", "wire_length",
    "vias", "unrouted_nets", "cancelled_nets", "deadline_fired",
    "faults_injected", "error", "manifest",
]

STATUS_TO_EXIT_CLASS = {"clean": 0, "failed": 1, "rejected": 2, "partial": 3}


def run_daemon(binary, requests, extra_args=(), timeout=300):
    stream = "".join(json.dumps(r) + "\n" for r in requests)
    proc = subprocess.run(
        [binary, *extra_args], input=stream, capture_output=True,
        text=True, timeout=timeout)
    responses = [json.loads(line) for line in proc.stdout.splitlines()
                 if line.strip()]
    return proc.returncode, responses


def check(cond, message):
    if not cond:
        print(f"FAIL: {message}")
        sys.exit(1)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("build_dir")
    parser.add_argument("--jobs", type=int, default=20,
                        help="size of the main mixed stream")
    args = parser.parse_args()

    served = os.path.join(args.build_dir, "src", "tools", "ocr_served")
    route = os.path.join(args.build_dir, "src", "tools", "ocr_route")
    check(os.path.exists(served), f"missing binary {served}")
    check(os.path.exists(route), f"missing binary {route}")

    # --- Mixed stream: clean jobs + one over-deadline + one fault-armed
    # + one broken instance + one malformed line. -----------------------
    requests = [{"id": f"clean-{i}", "example": "ami33",
                 "threads": 1 + i % 2} for i in range(args.jobs - 4)]
    requests.append({"id": "deadline", "example": "ex3", "deadline_ms": 1})
    requests.append({"id": "faulty", "example": "ami33", "threads": 2,
                     "faults": "engine.committer.commit=2"})
    requests.append({"id": "broken", "example": "no-such-example"})
    n_parsed = len(requests) + 1  # + the malformed raw line below

    stream = "".join(json.dumps(r) + "\n" for r in requests)
    stream += '{"id":"malformed" broken json}\n'
    # Queue bound above the stream size: overload is exercised separately
    # below; the mixed stream must admit everything.
    proc = subprocess.run(
        [served, "--workers", "2", "--queue-limit", str(n_parsed + len(requests))],
        input=stream, capture_output=True, text=True, timeout=600)
    check(proc.returncode == 0,
          f"daemon exit {proc.returncode}, stderr: {proc.stderr[-2000:]}")
    lines = [line for line in proc.stdout.splitlines() if line.strip()]
    check(len(lines) == n_parsed,
          f"expected {n_parsed} responses, got {len(lines)} (dropped?)")

    by_id = {}
    statuses = set()
    for line in lines:
        response = json.loads(line)
        for field in MANDATORY_FIELDS:
            check(field in response, f"response missing '{field}': {line}")
        check(response["exit_class"]
              == STATUS_TO_EXIT_CLASS[response["status"]],
              f"status/exit_class mismatch: {line}")
        statuses.add(response["status"])
        by_id[response["id"]] = response

    check(statuses == {"clean", "partial", "failed", "rejected"},
          f"stream should exercise all four statuses, got {statuses}")
    check(by_id["deadline"]["deadline_fired"] is True,
          "over-deadline job did not report deadline_fired")
    check(by_id["deadline"]["status"] == "partial",
          "over-deadline job should degrade to partial")
    check(by_id["faulty"]["faults_injected"] >= 1,
          "fault-armed job reported no injected faults")
    check(by_id["broken"]["exit_class"] == 1,
          "broken instance should fail with exit_class 1")
    check(by_id[""]["exit_class"] == 2,
          "malformed line should be rejected with exit_class 2")
    for rid, response in by_id.items():
        if rid.startswith("clean-"):
            check(response["status"] == "clean"
                  and response["faults_injected"] == 0
                  and not response["deadline_fired"],
                  f"isolation leak into {rid}: {response}")

    # --- Determinism: daemon vs CLI on the same spec. -------------------
    wire = {r["wire_length"] for i, r in by_id.items()
            if i.startswith("clean-")}
    vias = {r["vias"] for i, r in by_id.items() if i.startswith("clean-")}
    check(len(wire) == 1 and len(vias) == 1,
          f"clean ami33 jobs disagree: wire={wire} vias={vias}")

    metrics_path = os.path.join(args.build_dir, "smoke_metrics.json")
    subprocess.run([route, "--example", "ami33",
                    "--metrics-json", metrics_path],
                   check=True, capture_output=True, timeout=600)
    with open(metrics_path, encoding="utf-8") as f:
        metrics = json.load(f)
    check(metrics["gauges"]["flow.wire_length"] == wire.pop(),
          "daemon wire_length differs from ocr_route on the same spec")
    check(metrics["gauges"]["flow.vias"] == vias.pop(),
          "daemon vias differ from ocr_route on the same spec")

    # --- Overload: burst against a 1-deep queue. ------------------------
    burst = [{"id": f"burst-{i}", "example": "ami33"} for i in range(12)]
    code, responses = run_daemon(served, burst,
                                 ["--workers", "1", "--queue-limit", "1"])
    check(code == 0, f"overload daemon exit {code}")
    check(len(responses) == len(burst),
          f"overload dropped responses: {len(responses)}/{len(burst)}")
    rejected = [r for r in responses if r["exit_class"] == 2]
    completed = [r for r in responses if r["exit_class"] == 0]
    check(len(rejected) > 0, "1-deep queue burst produced no rejections")
    check(len(rejected) + len(completed) == len(burst),
          "burst responses are neither clean nor rejected")
    for r in rejected:
        check("queue full" in r["error"] or "admission" in r["error"],
              f"rejection without a reason: {r}")

    print(f"service smoke OK: {n_parsed} mixed responses, "
          f"{len(rejected)}/{len(burst)} burst rejections, "
          "CLI/daemon results identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
